"""Elastic work-stealing worker pool over the shared-memory graph plane.

The chunked process backend pre-splits a batch into static chunks and
hands each to ``ProcessPoolExecutor`` as an indivisible unit: one slow
group task stalls every task behind it in its chunk, results surface a
whole chunk at a time, and the pool's size is frozen at first spawn.
This module replaces all three properties for the serving layer:

- **Shared task queue, per-task pulls.** The parent puts every job on
  one ``multiprocessing.Queue``; each worker takes the next job the
  moment it finishes its current one. Scheduling is emergent — a heavy
  task simply occupies one worker while the others drain the queue.
- **Steal accounting.** Jobs are nominally assigned round-robin at
  submission (job *i* → worker slot ``i % pool``, the static-chunk
  layout); a job finished by any other worker counts as a *steal*, so
  ``ElasticWorkerPool.steals`` measures exactly the rebalancing a
  static schedule would have missed.
- **Elastic sizing.** While draining, the parent grows the pool one
  worker at a time whenever the estimated backlog exceeds
  ``grow_pressure x size`` (bounded by ``max_workers``); once the pool
  has sat idle past ``shrink_idle_seconds``, the next dispatch retires
  workers down to the larger of ``min_workers`` and what its own batch
  needs — a warm worker is never retired just to be regrown for the
  jobs arriving in the same call.
- **Per-task result pipe.** Every finished job is posted to a result
  queue as a compact :mod:`repro.serving.wire` payload with its
  worker-measured latency and closure-cache counter delta — the parent
  streams results in completion order instead of chunk order.

Dispatches are multiplexed: every job and result is tagged with a
dispatch id, and results that belong to another (still-open) dispatch
are routed to that dispatch's buffer instead of being consumed — so a
partially-drained ``stream()`` can overlap a later ``run()`` on the
same pool, and an abandoned iterator merely orphans its own buffer
(its in-flight jobs finish and are dropped) while the pool stays warm.

Failure semantics (see :class:`repro.serving.config.ResilienceConfig`):

- **Task errors** re-raise in the parent and fail *their* batch only —
  the pool keeps serving — unless ``isolate_errors`` demotes them to
  typed :class:`~repro.core.batch.TaskFailure` results.
- **Worker crashes are supervised.** Every worker posts a *lease*
  message the moment it pulls a job, so the parent always knows which
  task an unexpectedly dead worker held. The dead worker is replaced
  in place and its leased task re-queued (each job envelope carries an
  attempt counter); past ``max_task_retries`` the task fails
  *individually* as a ``TaskFailure(cause="crash")`` while the rest of
  the batch completes untouched.
- **Per-task deadlines.** With ``task_timeout_seconds`` armed, a
  worker holding one lease past the deadline is terminated, replaced,
  and its task retried or failed with cause ``"timeout"``. (A worker
  past its deadline is inside task compute — or an injected hang —
  not holding a queue lock, so termination is pipe-safe; the rare
  worker that finishes in the same instant may leave a stale duplicate
  result, which the drain's per-dispatch done-set drops.)
- **Circuit breaker.** Only when the lifetime respawn budget
  (``max_worker_respawns``) is spent, or spawning a replacement itself
  fails, does the pool abort and raise
  :class:`~concurrent.futures.process.BrokenProcessPool` — which the
  session's fallback machinery demotes to a local run exactly as
  before supervision existed. ``max_worker_respawns=0`` restores the
  legacy first-death-breaks-the-pool behavior.

There is one unavoidable race: a worker that dies *between* pulling a
job and its lease message flushing to the parent loses that task
untraceably (the drain would wait forever on a task nobody holds).
The window is microseconds of queue-feeder time; injected crash
faults sleep past it deliberately (:data:`repro.serving.faults.CRASH_FLUSH_SECONDS`).
"""

from __future__ import annotations

import os
import queue
import time
from collections import deque
from collections.abc import Iterator
from concurrent.futures.process import BrokenProcessPool

from repro.core.batch import _STAT_KEYS, TaskFailure
from repro.obs.log import get_logger
from repro.serving.config import ResilienceConfig, SchedulerConfig
from repro.serving.faults import FaultPlan

#: One job: (task index, method name, EngineConfig, SummaryTask).
Job = tuple
#: One drained result: ``(index, payload, latency_seconds, counters,
#: failure)`` — exactly one of payload/failure is non-None.
TaskResult = tuple

#: Worker-side state (graph, frozen view, cache, summarizer memo), one
#: per process — shared by the work-stealing workers here and the
#: chunked executor workers in :mod:`repro.api.session`, so both paths
#: memoize summarizers identically.
_WORKER: dict = {}


def _init_worker_state(handle, cache_config: tuple) -> None:
    """Attach the shared graph (and closure store); import plugins.

    ``cache_config`` is the worker-config tuple ``(closure_size,
    partial_reuse[, store_handle, plugin_modules, trace])`` — the
    two-element legacy form still works (no store, no plugins, no
    tracing). The store handle carries live ``multiprocessing`` locks,
    which only travel through process inheritance — exactly this init
    path. Plugin modules are imported *before* any task runs, so
    runtime-registered methods exist in the registry by the time the
    first summarizer is built; an import failure propagates, failing
    worker init loudly (the session then demotes to a local run)
    instead of silently mis-routing. A truthy ``trace`` tail element
    flips the worker's ambient span recorder on (see
    :mod:`repro.obs.trace`), so compute/encode/store spans ride back
    through the result pipe's stat-delta dict.
    """
    import importlib

    from repro.graph.shared import attach_knowledge_graph

    size, partial_reuse, store_handle, plugin_modules, trace_on = (
        tuple(cache_config) + (None, (), False)
    )[:5]
    for module in plugin_modules:
        importlib.import_module(module)
    if trace_on:
        from repro.obs import trace as obs_trace

        obs_trace.enable_ambient()
    graph = attach_knowledge_graph(handle)
    _WORKER["graph"] = graph
    _WORKER["frozen"] = graph.freeze()
    _WORKER["cache_config"] = (size, partial_reuse)
    _WORKER["cache"] = None
    _WORKER["summarizers"] = {}
    _WORKER["store"] = None
    if store_handle is not None:
        from repro.cache.store import SharedClosureStore

        _WORKER["store"] = SharedClosureStore.attach(store_handle)


def _worker_summarizer(name: str, config):
    """Per-worker summarizer memo, keyed like the parent session's."""
    from repro.api.registry import method_spec
    from repro.core.batch import TerminalClosureCache

    key = (name, config)
    summarizer = _WORKER["summarizers"].get(key)
    if summarizer is None:
        spec = method_spec(name)
        cache = None
        if spec.uses_closure_cache:
            cache = _WORKER["cache"]
            if cache is None:
                size, partial_reuse = _WORKER["cache_config"]
                store = _WORKER.get("store")
                if store is not None:
                    from repro.cache.readthrough import (
                        StoreBackedClosureCache,
                    )

                    cache = StoreBackedClosureCache(
                        size, partial_reuse=partial_reuse, store=store
                    )
                else:
                    cache = TerminalClosureCache(
                        size, partial_reuse=partial_reuse
                    )
                _WORKER["cache"] = cache
        summarizer = spec.build(_WORKER["graph"], config, cache)
        _WORKER["summarizers"][key] = summarizer
    return summarizer


def _steal_worker_main(
    handle, cache_config, task_queue, result_queue, worker_id: int
) -> None:
    """Worker loop: attach once, then pull jobs until poisoned.

    Posts ``("lease", worker_id, dispatch_id, index)`` the moment a
    job is pulled — the supervision breadcrumb that lets the parent
    re-queue this exact task if the worker dies holding it — then
    ``("result", worker_id, dispatch_id, index, payload, latency,
    delta)`` per finished job, ``("error", worker_id, dispatch_id,
    index, exception)`` for task-level failures (the worker itself
    keeps serving), and ``("exit", worker_id)`` after consuming a
    ``None`` poison pill. An injected fault directive riding the job
    envelope is applied *after* the lease post, so chaos tests always
    crash/hang traceably.
    """
    from repro.core.batch import _cache_counters
    from repro.obs import trace as obs_trace
    from repro.serving.wire import encode_explanation

    _init_worker_state(handle, cache_config)
    tracing = obs_trace.ambient_enabled()
    while True:
        try:
            job = task_queue.get()
        except (EOFError, OSError):  # queues torn down under us
            return
        if job is None:
            result_queue.put(("exit", worker_id))
            return
        dispatch_id, index, attempt, fault, name, config, task = job
        result_queue.put(("lease", worker_id, dispatch_id, index))
        if fault is not None:
            fault.apply_in_worker()  # crash never returns; hang sleeps
        if tracing:
            obs_trace.set_ambient_task(index)
        before = _cache_counters(_WORKER["cache"])
        start = time.perf_counter()
        try:
            explanation = _worker_summarizer(name, config).summarize(task)
        except Exception as error:
            if tracing:
                obs_trace.drain_ambient()  # discard the failed task's spans
            result_queue.put(
                ("error", worker_id, dispatch_id, index, error)
            )
            continue
        latency = time.perf_counter() - start
        after = _cache_counters(_WORKER["cache"])
        delta = {key: after[key] - before[key] for key in _STAT_KEYS}
        encode_start = time.perf_counter()
        payload = encode_explanation(explanation, _WORKER["frozen"])
        if tracing:
            obs_trace.record_event(
                "worker.encode",
                time.perf_counter() - encode_start,
                worker=worker_id,
            )
            obs_trace.record_event(
                "worker.compute",
                latency,
                worker=worker_id,
                attempt=attempt,
            )
            delta["_spans"] = obs_trace.drain_ambient()
        if fault is not None and fault.kind == "malformed":
            payload = fault.corrupt(payload)
        result_queue.put(
            ("result", worker_id, dispatch_id, index, payload, latency, delta)
        )


class ElasticWorkerPool:
    """Parent-side owner of the work-stealing worker fleet.

    Parameters
    ----------
    context:
        The ``multiprocessing`` context (start method) to spawn under.
    handle:
        Picklable :class:`~repro.graph.shared.SharedGraphHandle` the
        workers attach.
    cache_config:
        Worker-config tuple ``(closure_size, partial_reuse[,
        store_handle, plugin_modules])`` for each worker's own cache —
        the optional tail attaches the shared closure store and imports
        method plugins (see :func:`_init_worker_state`).
    config:
        The :class:`SchedulerConfig` sizing/pressure knobs.
    initial_workers:
        Nominal pool size (the session's resolved worker count); the
        pool starts here, clamped into ``[min_workers, max_workers]``.
    resilience:
        :class:`~repro.serving.config.ResilienceConfig` retry budget /
        deadline / circuit-breaker knobs (defaults applied when None).
    faults:
        Optional deterministic :class:`~repro.serving.faults.FaultPlan`
        threaded into job envelopes — chaos-test injection only.
    """

    #: Drain-loop tick: how often liveness/growth are re-checked while
    #: waiting on the result queue.
    POLL_SECONDS = 0.05
    #: Patience for graceful retirements before workers are terminated.
    JOIN_SECONDS = 5.0

    def __init__(
        self,
        context,
        handle,
        cache_config: tuple,
        config: SchedulerConfig,
        initial_workers: int,
        resilience: ResilienceConfig | None = None,
        faults: FaultPlan | None = None,
    ) -> None:
        self._context = context
        self._handle = handle
        self._cache_config = cache_config
        self.config = config
        self.resilience = (
            resilience if resilience is not None else ResilienceConfig()
        )
        self._faults = faults
        self.min_workers = max(1, config.min_workers)
        initial = max(self.min_workers, initial_workers)
        self.max_workers = config.max_workers or max(
            initial, os.cpu_count() or 1
        )
        self.max_workers = max(self.max_workers, self.min_workers)
        initial = min(initial, self.max_workers)
        self._task_queue = context.Queue()
        self._result_queue = context.Queue()
        self._workers: dict = {}
        self._next_worker_id = 0
        self.steals = 0
        self.grows = 0
        self.shrinks = 0
        self.peak_queue_depth = 0
        self.worker_deaths = 0
        self.task_retries = 0
        self.task_timeouts = 0
        self.respawns = 0
        self.broken = False
        #: worker id -> ((dispatch_id, index), lease monotonic time):
        #: which task each worker currently holds, per its last lease
        #: message — the supervision state crash recovery reads.
        self._leases: dict[int, tuple] = {}
        #: (dispatch_id, index) -> submitted job envelope, kept from
        #: submission until the result lands (or the dispatch's drain
        #: closes) so a crashed/timed-out task can be re-queued
        #: without shipping the envelope back through the lease pipe.
        self._inflight: dict[tuple[int, int], tuple] = {}
        #: dispatch id -> buffered messages awaiting that dispatch's
        #: drain. An entry exists from submission until the drain's
        #: finally block (or forever, bounded by the batch size, for an
        #: iterator the caller obtained but never consumed); messages
        #: for unknown ids — dispatches already abandoned mid-drain —
        #: are dropped on arrival.
        self._buffers: dict[int, object] = {}
        self._next_dispatch_id = 0
        #: dispatch id -> TraceBuilder while that dispatch traces, and
        #: (dispatch_id, index) -> submission monotonic time for its
        #: queue-wait spans. Both empty whenever tracing is off, so the
        #: per-message cost is one truthiness check.
        self._traces: dict[int, object] = {}
        self._submit_ts: dict[tuple[int, int], float] = {}
        self._idle_since = time.monotonic()
        try:
            for _ in range(initial):
                self._spawn()
        except BaseException:
            # Partial spawn (fork/exec failure): terminate what started
            # so the caller's fallback path inherits no stray children.
            self._abort()
            raise

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Current number of (believed-alive) workers."""
        return len(self._workers)

    def _spawn(self) -> None:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        process = self._context.Process(
            target=_steal_worker_main,
            args=(
                self._handle,
                self._cache_config,
                self._task_queue,
                self._result_queue,
                worker_id,
            ),
            daemon=True,
        )
        process.start()
        self._workers[worker_id] = process

    def _retire(self, worker_id: int) -> None:
        process = self._workers.pop(worker_id, None)
        if process is not None:
            process.join(timeout=self.JOIN_SECONDS)

    def _handle_exit(self, worker_id: int) -> None:
        """One worker consumed a poison pill: retire and account it.

        If open dispatches still need a pool and the last worker just
        left (a stray pill from a timed-out shrink), respawn the floor.
        """
        self._retire(worker_id)
        self.shrinks += 1
        if self._buffers and not self._workers:
            self._spawn()
            self.grows += 1

    def _route(self, message) -> None:
        """Buffer a result/error/failure for the dispatch it belongs to.

        Messages for unknown dispatch ids — batches abandoned mid-drain
        — are dropped; their workers' effort is already sunk.
        """
        buffer = self._buffers.get(message[2])
        if buffer is not None:
            buffer.append(message)

    def _absorb(self, message):
        """Fold one raw queue message into the supervision state.

        Lease messages are recorded and consumed (returns None);
        result/error messages clear their worker's lease and the
        task's in-flight envelope, then pass through. "exit" passes
        through untouched — each consumer has its own retirement
        accounting.
        """
        kind = message[0]
        if kind == "lease":
            _kind, worker_id, dispatch_id, index = message
            now = time.monotonic()
            self._leases[worker_id] = ((dispatch_id, index), now)
            if self._traces:
                trace = self._traces.get(dispatch_id)
                submitted = self._submit_ts.get((dispatch_id, index))
                if trace is not None and submitted is not None:
                    envelope = self._inflight.get((dispatch_id, index))
                    trace.event(
                        "queue_wait",
                        now - submitted,
                        parent=trace.task_span(index),
                        worker=worker_id,
                        attempt=envelope[2] if envelope else 0,
                    )
            return None
        if kind in ("result", "error"):
            self._leases.pop(message[1], None)
            self._inflight.pop((message[2], message[3]), None)
        return message

    def _envelope(self, dispatch_id: int, attempt: int, job: Job) -> tuple:
        """Wrap one job for the task queue, arming any injected fault."""
        index = job[0]
        fault = None
        if self._faults is not None:
            fault = self._faults.for_task(index, attempt)
            if fault is not None and fault.kind == "overload":
                fault = None  # server-loop directive, not a worker one
        return (dispatch_id, index, attempt, fault, *job[1:])

    def _replace_worker(self) -> None:
        """Spawn a supervision replacement or trip the circuit breaker.

        The respawn budget is a pool-lifetime total: an environment
        where workers keep dying (OOM churn, broken libc, a fault plan
        with ``attempts`` past the retry budget) eventually stops
        burning processes and falls back to the session's local run.
        """
        self.respawns += 1
        if self.respawns > self.resilience.max_worker_respawns:
            self._abort()
            raise BrokenProcessPool(
                f"circuit breaker open: {self.respawns - 1} worker "
                "respawn(s) already spent "
                f"(max_worker_respawns={self.resilience.max_worker_respawns})"
            )
        try:
            self._spawn()
        except OSError as error:
            self._abort()
            raise BrokenProcessPool(
                "cannot spawn a replacement worker"
            ) from error
        get_logger().emit(
            "worker_respawn",
            respawns=self.respawns,
            budget=self.resilience.max_worker_respawns,
            pool_size=self.size,
        )

    def _redo_or_fail(self, key: tuple[int, int], cause: str, detail: str) -> None:
        """Re-queue a crashed/timed-out task, or fail it individually.

        ``key`` is the task's ``(dispatch_id, index)``. The envelope's
        attempt counter carries how many times it already failed; past
        ``max_task_retries`` a typed :class:`TaskFailure` is routed to
        the dispatch's buffer in place of a result, so the batch still
        completes with one outcome per task.
        """
        envelope = self._inflight.get(key)
        if envelope is None:
            return  # dispatch abandoned; nothing left to redo
        dispatch_id, index, attempt = envelope[0], envelope[1], envelope[2]
        if attempt < self.resilience.max_task_retries:
            self.task_retries += 1
            requeued = self._envelope(
                dispatch_id, attempt + 1, (index, *envelope[4:])
            )
            self._inflight[key] = requeued
            if self._traces and key in self._submit_ts:
                self._submit_ts[key] = time.monotonic()
            self._task_queue.put(requeued)
        else:
            self._inflight.pop(key, None)
            self._route(
                (
                    "failure",
                    None,
                    dispatch_id,
                    index,
                    TaskFailure(
                        cause=cause, message=detail, retries=attempt
                    ),
                )
            )

    def _check_deadlines(self) -> None:
        """Terminate and replace workers stuck past the task deadline.

        Armed by ``ResilienceConfig.task_timeout_seconds``; checked on
        the drain's empty-queue polls (a hung worker means the queue
        eventually looks idle, so the monitor always gets its turn).
        """
        timeout = self.resilience.task_timeout_seconds
        if not timeout or not self._leases:
            return
        now = time.monotonic()
        for worker_id, (key, since) in list(self._leases.items()):
            if now - since < timeout:
                continue
            self._leases.pop(worker_id, None)
            self.task_timeouts += 1
            process = self._workers.pop(worker_id, None)
            if process is not None:
                process.terminate()
                process.join(timeout=self.JOIN_SECONDS)
            self._record_attempt_failure(key, "timeout", since, worker_id)
            get_logger().emit(
                "task_timeout",
                task=key[1],
                worker=worker_id,
                timeout_seconds=timeout,
            )
            self._replace_worker()
            self._redo_or_fail(
                key,
                "timeout",
                f"task {key[1]} exceeded its {timeout:.3g}s deadline "
                f"on worker {worker_id}",
            )

    def _record_attempt_failure(
        self, key: tuple[int, int], outcome: str, since: float, worker_id: int
    ) -> None:
        """Trace the failed attempt (and the respawn that follows it).

        ``since`` is the failed attempt's lease time, so the span's
        duration is how long the worker held the task before the crash
        was detected / the deadline fired. No-op unless this dispatch
        traces.
        """
        if not self._traces:
            return
        trace = self._traces.get(key[0])
        if trace is None:
            return
        envelope = self._inflight.get(key)
        parent = trace.task_span(key[1])
        trace.event(
            "task.attempt",
            time.monotonic() - since,
            parent=parent,
            outcome=outcome,
            worker=worker_id,
            attempt=envelope[2] if envelope else 0,
        )
        trace.event("worker.respawn", 0.0, parent=parent, worker=worker_id)

    def maybe_shrink(self, incoming: int = 0) -> int:
        """Retire idle workers the next batch will not need.

        The floor is the larger of ``min_workers`` and the incoming
        batch size (capped at ``max_workers``) — a warm worker is never
        retired just to be regrown for the jobs arriving in the same
        call. Returns how many workers were retired. Called at dispatch
        start (with the batch size) — the pool deliberately has no
        timer thread, so shrinking is observable (and testable) at
        well-defined points.
        """
        floor = max(self.min_workers, min(incoming, self.max_workers))
        extra = self.size - floor
        if self.broken or extra <= 0:
            return 0
        idle = time.monotonic() - self._idle_since
        if idle < self.config.shrink_idle_seconds:
            return 0
        for _ in range(extra):
            self._task_queue.put(None)
        retired = 0
        deadline = time.monotonic() + self.JOIN_SECONDS + extra
        while retired < extra and time.monotonic() < deadline:
            try:
                raw = self._result_queue.get(timeout=self.POLL_SECONDS)
            except queue.Empty:
                continue
            message = self._absorb(raw)
            if message is None:
                continue
            if message[0] == "exit":
                self._retire(message[1])
                retired += 1
                self.shrinks += 1
            else:
                # A straggler from a still-open dispatch: buffer it for
                # that dispatch's drain, never drop it.
                self._route(message)
        return retired

    def _maybe_grow(self, outstanding: int) -> None:
        backlog = max(0, outstanding - self.size)
        if backlog > self.peak_queue_depth:
            self.peak_queue_depth = backlog
        if (
            self.size < self.max_workers
            and backlog > self.config.grow_pressure * self.size
        ):
            self._spawn()
            self.grows += 1

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def dispatch(self, jobs: list[Job], trace=None) -> Iterator[TaskResult]:
        """Submit every job now; return the completion-order drain.

        Submission is eager (workers start computing immediately); the
        returned iterator yields ``(index, payload, latency, counters,
        failure)`` per task as results land — ``failure`` is a typed
        :class:`TaskFailure` (and ``payload`` None) for tasks the
        resilience layer gave up on. Dispatches multiplex: a later
        dispatch may start (and fully drain) while an earlier one is
        only partially consumed — each drain routes messages that
        belong to other open dispatches into their buffers. Abandoning
        an iterator — including via a task error propagating out —
        forfeits only that batch's remaining results (its in-flight
        jobs finish and are dropped); the pool stays warm.

        ``trace`` is an optional :class:`repro.obs.trace.TraceBuilder`;
        when given, the pool records per-task queue-wait spans (lease
        time minus submission time), failed-attempt spans, and
        worker-respawn events into it for this dispatch's lifetime.
        """
        if self.broken:
            raise BrokenProcessPool("work-stealing pool is broken")
        self.maybe_shrink(incoming=len(jobs))
        if not self._workers:  # floor after pathological retirements
            self._spawn()
        dispatch_id = self._next_dispatch_id
        self._next_dispatch_id += 1
        slots = sorted(self._workers)
        nominal = {
            job[0]: slots[position % len(slots)]
            for position, job in enumerate(jobs)
        }
        self._buffers[dispatch_id] = deque()
        if trace is not None:
            self._traces[dispatch_id] = trace
        for job in jobs:
            envelope = self._envelope(dispatch_id, 0, job)
            self._inflight[(dispatch_id, job[0])] = envelope
            if trace is not None:
                self._submit_ts[(dispatch_id, job[0])] = time.monotonic()
            self._task_queue.put(envelope)
        return self._drain(dispatch_id, len(jobs), nominal)

    def _drain(
        self, dispatch_id: int, total: int, nominal: dict
    ) -> Iterator[TaskResult]:
        outstanding = total
        buffer = self._buffers[dispatch_id]
        #: Indices already concluded for this dispatch. A deadline-kill
        #: can race the victim's final result onto the queue after its
        #: task was re-queued; whichever outcome lands second is a
        #: stale duplicate and must not double-decrement outstanding.
        done: set[int] = set()
        try:
            while outstanding:
                if buffer:
                    message = buffer.popleft()
                else:
                    self._maybe_grow(outstanding)
                    try:
                        raw = self._result_queue.get(
                            timeout=self.POLL_SECONDS
                        )
                    except queue.Empty:
                        self._check_deadlines()
                        self._ensure_alive()
                        continue
                    except (OSError, ValueError) as error:
                        # Queues closed under us: the pool was aborted
                        # (worker death seen by a sibling drain) or
                        # shut down while this iterator was alive.
                        raise BrokenProcessPool(
                            "work-stealing pool torn down mid-drain"
                        ) from error
                    message = self._absorb(raw)
                    if message is None:  # lease breadcrumb, consumed
                        continue
                    if message[0] == "exit":  # stray timed-out pill
                        self._handle_exit(message[1])
                        continue
                    if message[2] != dispatch_id:
                        self._route(message)
                        continue
                kind = message[0]
                index = message[3]
                if index in done:  # stale duplicate (deadline race)
                    continue
                if kind == "result":
                    (
                        _kind,
                        worker_id,
                        _dispatch,
                        index,
                        payload,
                        latency,
                        delta,
                    ) = message
                    done.add(index)
                    outstanding -= 1
                    if nominal.get(index, worker_id) != worker_id:
                        self.steals += 1
                    self._idle_since = time.monotonic()
                    yield index, payload, latency, delta, None
                elif kind == "failure":
                    done.add(index)
                    outstanding -= 1
                    self._idle_since = time.monotonic()
                    yield (
                        index,
                        None,
                        0.0,
                        dict.fromkeys(_STAT_KEYS, 0),
                        message[4],
                    )
                elif self.resilience.isolate_errors:
                    error = message[4]
                    done.add(index)
                    outstanding -= 1
                    self._idle_since = time.monotonic()
                    yield (
                        index,
                        None,
                        0.0,
                        dict.fromkeys(_STAT_KEYS, 0),
                        TaskFailure(
                            cause="error",
                            message=f"{type(error).__name__}: {error}",
                        ),
                    )
                else:  # "error": fail this batch; the pool keeps serving
                    raise message[4]
        finally:
            self._idle_since = time.monotonic()
            self._buffers.pop(dispatch_id, None)
            self._traces.pop(dispatch_id, None)
            for key in [k for k in self._submit_ts if k[0] == dispatch_id]:
                del self._submit_ts[key]
            for key in [k for k in self._inflight if k[0] == dispatch_id]:
                del self._inflight[key]

    def _ensure_alive(self) -> None:
        """Supervise the fleet: replace dead workers, redo their tasks.

        Called only when the result queue looks idle. Pending messages
        are consumed first — a gracefully-poisoned worker's "exit" ack
        is never mistaken for a crash, and leases/results that raced in
        update the supervision state before liveness is judged. Every
        dead worker is then replaced in place and its leased task
        re-queued (or failed individually past the retry budget); only
        the circuit breaker aborts the pool with ``BrokenProcessPool``.
        """
        while True:
            try:
                raw = self._result_queue.get_nowait()
            except queue.Empty:
                break
            message = self._absorb(raw)
            if message is None:
                continue
            if message[0] == "exit":
                self._handle_exit(message[1])
            else:
                self._route(message)
        for worker_id, process in list(self._workers.items()):
            if process.is_alive():
                continue
            self._workers.pop(worker_id)
            process.join(timeout=self.JOIN_SECONDS)
            self.worker_deaths += 1
            lease = self._leases.pop(worker_id, None)
            get_logger().emit(
                "worker_death",
                worker=worker_id,
                exitcode=process.exitcode,
                leased_task=lease[0][1] if lease else None,
            )
            self._replace_worker()
            if lease is not None:
                key, since = lease
                self._record_attempt_failure(key, "crash", since, worker_id)
                self._redo_or_fail(
                    key,
                    "crash",
                    f"worker {worker_id} died holding task {key[1]} "
                    f"(exit code {process.exitcode})",
                )

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def _close_queues(self) -> None:
        for q in (self._task_queue, self._result_queue):
            try:
                q.close()
                q.cancel_join_thread()
            except (OSError, ValueError):  # pragma: no cover
                pass

    def _abort(self) -> None:
        """Terminate everything now; the pool is unusable afterwards."""
        self.broken = True
        for process in self._workers.values():
            if process.is_alive():
                process.terminate()
        for process in self._workers.values():
            process.join(timeout=self.JOIN_SECONDS)
        self._workers.clear()
        self._close_queues()

    def shutdown(self) -> None:
        """Graceful teardown: poison every worker, join, close queues."""
        if self.broken:
            self._close_queues()
            return
        self.broken = True
        for _ in range(len(self._workers)):
            self._task_queue.put(None)
        deadline = time.monotonic() + self.JOIN_SECONDS
        remaining = dict(self._workers)
        while remaining and time.monotonic() < deadline:
            try:
                message = self._result_queue.get(timeout=self.POLL_SECONDS)
            except queue.Empty:
                for worker_id, process in list(remaining.items()):
                    if not process.is_alive():
                        remaining.pop(worker_id)
                continue
            if message[0] == "exit":
                remaining.pop(message[1], None)
        for process in self._workers.values():
            process.join(timeout=0.5)
            if process.is_alive():
                process.terminate()
                process.join(timeout=self.JOIN_SECONDS)
        self._workers.clear()
        self._close_queues()
