"""Elastic work-stealing worker pool over the shared-memory graph plane.

The chunked process backend pre-splits a batch into static chunks and
hands each to ``ProcessPoolExecutor`` as an indivisible unit: one slow
group task stalls every task behind it in its chunk, results surface a
whole chunk at a time, and the pool's size is frozen at first spawn.
This module replaces all three properties for the serving layer:

- **Shared task queue, per-task pulls.** The parent puts every job on
  one ``multiprocessing.Queue``; each worker takes the next job the
  moment it finishes its current one. Scheduling is emergent — a heavy
  task simply occupies one worker while the others drain the queue.
- **Steal accounting.** Jobs are nominally assigned round-robin at
  submission (job *i* → worker slot ``i % pool``, the static-chunk
  layout); a job finished by any other worker counts as a *steal*, so
  ``ElasticWorkerPool.steals`` measures exactly the rebalancing a
  static schedule would have missed.
- **Elastic sizing.** While draining, the parent grows the pool one
  worker at a time whenever the estimated backlog exceeds
  ``grow_pressure x size`` (bounded by ``max_workers``); once the pool
  has sat idle past ``shrink_idle_seconds``, the next dispatch retires
  workers down to the larger of ``min_workers`` and what its own batch
  needs — a warm worker is never retired just to be regrown for the
  jobs arriving in the same call.
- **Per-task result pipe.** Every finished job is posted to a result
  queue as a compact :mod:`repro.serving.wire` payload with its
  worker-measured latency and closure-cache counter delta — the parent
  streams results in completion order instead of chunk order.

Dispatches are multiplexed: every job and result is tagged with a
dispatch id, and results that belong to another (still-open) dispatch
are routed to that dispatch's buffer instead of being consumed — so a
partially-drained ``stream()`` can overlap a later ``run()`` on the
same pool, and an abandoned iterator merely orphans its own buffer
(its in-flight jobs finish and are dropped) while the pool stays warm.

Failure semantics: a task-level exception re-raises in the parent and
fails *its* batch only — the pool keeps serving. An unexpectedly dead
worker raises
:class:`~concurrent.futures.process.BrokenProcessPool`, which the
session's fallback machinery already demotes to a local run; only then
does the pool mark itself broken (a shared queue of unknown residual
state is scrapped, never reused) and the session respawns a fresh pool
on the next process-backed call.
"""

from __future__ import annotations

import os
import queue
import time
from collections import deque
from collections.abc import Iterator
from concurrent.futures.process import BrokenProcessPool

from repro.serving.config import SchedulerConfig

#: One job: (task index, method name, EngineConfig, SummaryTask).
Job = tuple
#: One drained result: (index, wire payload, latency_seconds, counters).
TaskResult = tuple

#: Worker-side state (graph, frozen view, cache, summarizer memo), one
#: per process — shared by the work-stealing workers here and the
#: chunked executor workers in :mod:`repro.api.session`, so both paths
#: memoize summarizers identically.
_WORKER: dict = {}


def _init_worker_state(handle, cache_config: tuple[int, bool]) -> None:
    """Attach the shared graph; summarizers are built on first use."""
    from repro.graph.shared import attach_knowledge_graph

    graph = attach_knowledge_graph(handle)
    _WORKER["graph"] = graph
    _WORKER["frozen"] = graph.freeze()
    _WORKER["cache_config"] = cache_config
    _WORKER["cache"] = None
    _WORKER["summarizers"] = {}


def _worker_summarizer(name: str, config):
    """Per-worker summarizer memo, keyed like the parent session's."""
    from repro.api.registry import method_spec
    from repro.core.batch import TerminalClosureCache

    key = (name, config)
    summarizer = _WORKER["summarizers"].get(key)
    if summarizer is None:
        spec = method_spec(name)
        cache = None
        if spec.uses_closure_cache:
            cache = _WORKER["cache"]
            if cache is None:
                size, partial_reuse = _WORKER["cache_config"]
                cache = TerminalClosureCache(
                    size, partial_reuse=partial_reuse
                )
                _WORKER["cache"] = cache
        summarizer = spec.build(_WORKER["graph"], config, cache)
        _WORKER["summarizers"][key] = summarizer
    return summarizer


def _steal_worker_main(
    handle, cache_config, task_queue, result_queue, worker_id: int
) -> None:
    """Worker loop: attach once, then pull jobs until poisoned.

    Posts ``("result", worker_id, dispatch_id, index, payload, latency,
    delta)`` per finished job, ``("error", worker_id, dispatch_id,
    index, exception)`` for task-level failures (the worker itself
    keeps serving), and ``("exit", worker_id)`` after consuming a
    ``None`` poison pill.
    """
    from repro.core.batch import _STAT_KEYS, _cache_counters
    from repro.serving.wire import encode_explanation

    _init_worker_state(handle, cache_config)
    while True:
        try:
            job = task_queue.get()
        except (EOFError, OSError):  # queues torn down under us
            return
        if job is None:
            result_queue.put(("exit", worker_id))
            return
        dispatch_id, index, name, config, task = job
        before = _cache_counters(_WORKER["cache"])
        start = time.perf_counter()
        try:
            explanation = _worker_summarizer(name, config).summarize(task)
        except Exception as error:
            result_queue.put(
                ("error", worker_id, dispatch_id, index, error)
            )
            continue
        latency = time.perf_counter() - start
        after = _cache_counters(_WORKER["cache"])
        delta = {key: after[key] - before[key] for key in _STAT_KEYS}
        payload = encode_explanation(explanation, _WORKER["frozen"])
        result_queue.put(
            ("result", worker_id, dispatch_id, index, payload, latency, delta)
        )


class ElasticWorkerPool:
    """Parent-side owner of the work-stealing worker fleet.

    Parameters
    ----------
    context:
        The ``multiprocessing`` context (start method) to spawn under.
    handle:
        Picklable :class:`~repro.graph.shared.SharedGraphHandle` the
        workers attach.
    cache_config:
        ``(closure_size, partial_reuse)`` for each worker's own cache.
    config:
        The :class:`SchedulerConfig` sizing/pressure knobs.
    initial_workers:
        Nominal pool size (the session's resolved worker count); the
        pool starts here, clamped into ``[min_workers, max_workers]``.
    """

    #: Drain-loop tick: how often liveness/growth are re-checked while
    #: waiting on the result queue.
    POLL_SECONDS = 0.05
    #: Patience for graceful retirements before workers are terminated.
    JOIN_SECONDS = 5.0

    def __init__(
        self,
        context,
        handle,
        cache_config: tuple[int, bool],
        config: SchedulerConfig,
        initial_workers: int,
    ) -> None:
        self._context = context
        self._handle = handle
        self._cache_config = cache_config
        self.config = config
        self.min_workers = max(1, config.min_workers)
        initial = max(self.min_workers, initial_workers)
        self.max_workers = config.max_workers or max(
            initial, os.cpu_count() or 1
        )
        self.max_workers = max(self.max_workers, self.min_workers)
        initial = min(initial, self.max_workers)
        self._task_queue = context.Queue()
        self._result_queue = context.Queue()
        self._workers: dict = {}
        self._next_worker_id = 0
        self.steals = 0
        self.grows = 0
        self.shrinks = 0
        self.peak_queue_depth = 0
        self.broken = False
        #: dispatch id -> buffered messages awaiting that dispatch's
        #: drain. An entry exists from submission until the drain's
        #: finally block (or forever, bounded by the batch size, for an
        #: iterator the caller obtained but never consumed); messages
        #: for unknown ids — dispatches already abandoned mid-drain —
        #: are dropped on arrival.
        self._buffers: dict[int, object] = {}
        self._next_dispatch_id = 0
        self._idle_since = time.monotonic()
        try:
            for _ in range(initial):
                self._spawn()
        except BaseException:
            # Partial spawn (fork/exec failure): terminate what started
            # so the caller's fallback path inherits no stray children.
            self._abort()
            raise

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Current number of (believed-alive) workers."""
        return len(self._workers)

    def _spawn(self) -> None:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        process = self._context.Process(
            target=_steal_worker_main,
            args=(
                self._handle,
                self._cache_config,
                self._task_queue,
                self._result_queue,
                worker_id,
            ),
            daemon=True,
        )
        process.start()
        self._workers[worker_id] = process

    def _retire(self, worker_id: int) -> None:
        process = self._workers.pop(worker_id, None)
        if process is not None:
            process.join(timeout=self.JOIN_SECONDS)

    def _handle_exit(self, worker_id: int) -> None:
        """One worker consumed a poison pill: retire and account it.

        If open dispatches still need a pool and the last worker just
        left (a stray pill from a timed-out shrink), respawn the floor.
        """
        self._retire(worker_id)
        self.shrinks += 1
        if self._buffers and not self._workers:
            self._spawn()
            self.grows += 1

    def _route(self, message) -> None:
        """Buffer a result/error for the dispatch it belongs to.

        Messages for unknown dispatch ids — batches abandoned mid-drain
        — are dropped; their workers' effort is already sunk.
        """
        buffer = self._buffers.get(message[2])
        if buffer is not None:
            buffer.append(message)

    def maybe_shrink(self, incoming: int = 0) -> int:
        """Retire idle workers the next batch will not need.

        The floor is the larger of ``min_workers`` and the incoming
        batch size (capped at ``max_workers``) — a warm worker is never
        retired just to be regrown for the jobs arriving in the same
        call. Returns how many workers were retired. Called at dispatch
        start (with the batch size) — the pool deliberately has no
        timer thread, so shrinking is observable (and testable) at
        well-defined points.
        """
        floor = max(self.min_workers, min(incoming, self.max_workers))
        extra = self.size - floor
        if self.broken or extra <= 0:
            return 0
        idle = time.monotonic() - self._idle_since
        if idle < self.config.shrink_idle_seconds:
            return 0
        for _ in range(extra):
            self._task_queue.put(None)
        retired = 0
        deadline = time.monotonic() + self.JOIN_SECONDS + extra
        while retired < extra and time.monotonic() < deadline:
            try:
                message = self._result_queue.get(timeout=self.POLL_SECONDS)
            except queue.Empty:
                continue
            if message[0] == "exit":
                self._retire(message[1])
                retired += 1
                self.shrinks += 1
            else:
                # A straggler from a still-open dispatch: buffer it for
                # that dispatch's drain, never drop it.
                self._route(message)
        return retired

    def _maybe_grow(self, outstanding: int) -> None:
        backlog = max(0, outstanding - self.size)
        if backlog > self.peak_queue_depth:
            self.peak_queue_depth = backlog
        if (
            self.size < self.max_workers
            and backlog > self.config.grow_pressure * self.size
        ):
            self._spawn()
            self.grows += 1

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def dispatch(self, jobs: list[Job]) -> Iterator[TaskResult]:
        """Submit every job now; return the completion-order drain.

        Submission is eager (workers start computing immediately); the
        returned iterator yields ``(index, payload, latency, counters)``
        per task as results land. Dispatches multiplex: a later
        dispatch may start (and fully drain) while an earlier one is
        only partially consumed — each drain routes messages that
        belong to other open dispatches into their buffers. Abandoning
        an iterator — including via a task error propagating out —
        forfeits only that batch's remaining results (its in-flight
        jobs finish and are dropped); the pool stays warm.
        """
        if self.broken:
            raise BrokenProcessPool("work-stealing pool is broken")
        self.maybe_shrink(incoming=len(jobs))
        if not self._workers:  # floor after pathological retirements
            self._spawn()
        dispatch_id = self._next_dispatch_id
        self._next_dispatch_id += 1
        slots = sorted(self._workers)
        nominal = {
            job[0]: slots[position % len(slots)]
            for position, job in enumerate(jobs)
        }
        self._buffers[dispatch_id] = deque()
        for job in jobs:
            self._task_queue.put((dispatch_id, *job))
        return self._drain(dispatch_id, len(jobs), nominal)

    def _drain(
        self, dispatch_id: int, total: int, nominal: dict
    ) -> Iterator[TaskResult]:
        outstanding = total
        buffer = self._buffers[dispatch_id]
        try:
            while outstanding:
                if buffer:
                    message = buffer.popleft()
                else:
                    self._maybe_grow(outstanding)
                    try:
                        message = self._result_queue.get(
                            timeout=self.POLL_SECONDS
                        )
                    except queue.Empty:
                        self._ensure_alive()
                        continue
                    except (OSError, ValueError) as error:
                        # Queues closed under us: the pool was aborted
                        # (worker death seen by a sibling drain) or
                        # shut down while this iterator was alive.
                        raise BrokenProcessPool(
                            "work-stealing pool torn down mid-drain"
                        ) from error
                    if message[0] == "exit":  # stray timed-out pill
                        self._handle_exit(message[1])
                        continue
                    if message[2] != dispatch_id:
                        self._route(message)
                        continue
                if message[0] == "result":
                    (
                        _kind,
                        worker_id,
                        _dispatch,
                        index,
                        payload,
                        latency,
                        delta,
                    ) = message
                    outstanding -= 1
                    if nominal.get(index, worker_id) != worker_id:
                        self.steals += 1
                    self._idle_since = time.monotonic()
                    yield index, payload, latency, delta
                else:  # "error": fail this batch; the pool keeps serving
                    raise message[4]
        finally:
            self._idle_since = time.monotonic()
            self._buffers.pop(dispatch_id, None)

    def _ensure_alive(self) -> None:
        """Raise ``BrokenProcessPool`` if any worker died unexpectedly.

        Called only when the result queue looks idle. Pending "exit"
        acks are consumed first (and their workers retired in place) so
        a gracefully-poisoned worker is never mistaken for a crash;
        results/errors that raced in are routed to their dispatch
        buffers (possibly the calling drain's own).
        """
        while True:
            try:
                message = self._result_queue.get_nowait()
            except queue.Empty:
                break
            if message[0] == "exit":
                self._handle_exit(message[1])
            else:
                self._route(message)
        dead = [
            worker_id
            for worker_id, process in self._workers.items()
            if not process.is_alive()
        ]
        if dead:
            self._abort()
            raise BrokenProcessPool(
                f"{len(dead)} work-stealing worker(s) died unexpectedly"
            )

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def _close_queues(self) -> None:
        for q in (self._task_queue, self._result_queue):
            try:
                q.close()
                q.cancel_join_thread()
            except (OSError, ValueError):  # pragma: no cover
                pass

    def _abort(self) -> None:
        """Terminate everything now; the pool is unusable afterwards."""
        self.broken = True
        for process in self._workers.values():
            if process.is_alive():
                process.terminate()
        for process in self._workers.values():
            process.join(timeout=self.JOIN_SECONDS)
        self._workers.clear()
        self._close_queues()

    def shutdown(self) -> None:
        """Graceful teardown: poison every worker, join, close queues."""
        if self.broken:
            self._close_queues()
            return
        self.broken = True
        for _ in range(len(self._workers)):
            self._task_queue.put(None)
        deadline = time.monotonic() + self.JOIN_SECONDS
        remaining = dict(self._workers)
        while remaining and time.monotonic() < deadline:
            try:
                message = self._result_queue.get(timeout=self.POLL_SECONDS)
            except queue.Empty:
                for worker_id, process in list(remaining.items()):
                    if not process.is_alive():
                        remaining.pop(worker_id)
                continue
            if message[0] == "exit":
                remaining.pop(message[1], None)
        for process in self._workers.values():
            process.join(timeout=0.5)
            if process.is_alive():
                process.terminate()
                process.join(timeout=self.JOIN_SECONDS)
        self._workers.clear()
        self._close_queues()
