"""Network serving demo: the asyncio front door end to end.

Shows the serving tier from the outside — an `ExplanationServer`
hosted on a background thread, a blocking `ExplanationClient` speaking
the versioned length-prefixed protocol, per-task result streaming over
the wire, mutation RPCs that invalidate the warm session, typed error
frames, the admission-control overload path, and supervised recovery
from an injected worker crash. Runs in a few seconds::

    python examples/server_demo.py

The same server is what ``repro-cli serve`` hosts in the foreground;
everything here works identically against that process.
"""

import time

import numpy as np

from repro.api import ParallelConfig, ResilienceConfig, SummaryRequest
from repro.core.scenarios import user_centric_task
from repro.data import (
    ExternalSchema,
    MovieLensSpec,
    attach_external_knowledge,
    generate_ml1m_like,
)
from repro.graph.build import build_interaction_graph
from repro.recommenders import PGPRRecommender
from repro.serving import (
    ExplanationClient,
    ExplanationServer,
    Fault,
    FaultPlan,
    ServerConfig,
    ServerError,
    ServerThread,
)


def main() -> None:
    # 1. A small ML1M-shaped knowledge graph plus PGPR explanations.
    dataset = generate_ml1m_like(MovieLensSpec(scale=0.03, seed=7))
    graph = build_interaction_graph(dataset.ratings)
    attach_external_knowledge(
        graph, ExternalSchema.movies(), np.random.default_rng(0)
    )
    recommender = PGPRRecommender().fit(graph, dataset.ratings)
    users = [u for u in list(graph.nodes())[:400] if u.startswith("u:")][:8]
    requests = [
        SummaryRequest(task=user_centric_task(recommender.recommend(u, 5), 5))
        for u in users
    ]
    print(
        f"graph: {graph.num_nodes} nodes / {graph.num_edges} edges; "
        f"{len(requests)} user-centric requests"
    )

    # 2. Host the server on a background thread (ephemeral port) and
    # speak to it over TCP exactly as a remote client would.
    server = ExplanationServer(graph, ServerConfig(max_pending=16))
    with ServerThread(server) as hosted:
        with ExplanationClient("127.0.0.1", hosted.port) as client:
            print(f"\nserver up on 127.0.0.1:{hosted.port}")
            print(f"methods over the wire: {', '.join(client.methods())}")

            # One-off explain: the reply carries a full explanation,
            # bit-identical to an in-process session's.
            summary = client.explain(requests[0])
            sticky = client.explain(
                SummaryRequest(
                    task=requests[0].task, overrides={"lam": 100.0}
                )
            )
            print(
                f"explain(): st={summary.subgraph.num_edges} edges, "
                f"st(λ=100)={sticky.subgraph.num_edges} edges"
            )

            # Streaming: each `result` frame leaves the server the
            # moment the scheduler yields it, not when the batch ends.
            print("\nstreaming the batch:")
            start = time.perf_counter()
            for done, result in enumerate(client.stream(requests), start=1):
                elapsed_ms = (time.perf_counter() - start) * 1000.0
                print(
                    f"  [{done}/{len(requests)}] task #{result.index}: "
                    f"{result.explanation.subgraph.num_edges} edges "
                    f"at +{elapsed_ms:.0f} ms"
                )

            # Mutation RPCs invalidate the server's warm session; the
            # next request sees the new graph version.
            some_user = users[0]
            neighbor = next(iter(graph.neighbors(some_user)))
            client.set_weight(some_user, neighbor, 4.5)
            client.explain(requests[0])
            stats = client.stats()
            print(
                f"\nafter a mutation RPC: invalidations="
                f"{stats['session']['invalidations']} "
                f"tasks={stats['session']['tasks']} "
                f"frames_in={stats['server']['frames_in']}"
            )

            # Errors come back as typed frames, never hung connections.
            try:
                client.explain(
                    SummaryRequest(task=requests[0].task, method="no-such")
                )
            except ServerError as error:
                print(f"typed error frame: code={error.code!r} ({error})")

    # 3. Resilience: the same batch survives a worker crash. A seeded
    # FaultPlan kills the worker holding task #2 mid-run; supervision
    # re-queues the leased task, respawns the worker in place, and the
    # batch completes with every result intact — the only trace is the
    # worker_deaths counter.
    chaos_server = ExplanationServer(
        graph,
        ServerConfig(max_pending=16),
        parallel=ParallelConfig(backend="processes", workers=2),
        resilience=ResilienceConfig(max_task_retries=2),
        faults=FaultPlan((Fault("crash", at=2),)),
    )
    with ServerThread(chaos_server) as hosted:
        with ExplanationClient("127.0.0.1", hosted.port) as client:
            print("\ninjecting one worker crash into the same batch:")
            report = client.run(requests)
            stats = client.stats()["session"]
            print(
                f"  {len(report.results)} results, "
                f"{report.failed} failed, {report.retried} retried | "
                f"worker_deaths={stats['worker_deaths']} "
                f"task_retries={stats['task_retries']}"
            )
            assert report.failed == 0 and stats["worker_deaths"] == 1

    print("\nserver stopped; see README 'Resilience' for the failure modes")


if __name__ == "__main__":
    main()
