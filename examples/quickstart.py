"""Quickstart: the paper's Table I example plus a first real summary.

Runs in a few seconds::

    python examples/quickstart.py
"""

import numpy as np

from repro import Summarizer, quick_demo, user_centric_task
from repro.core.verbalize import verbalize_path, verbalize_summary
from repro.data import (
    ExternalSchema,
    MovieLensSpec,
    attach_external_knowledge,
    generate_ml1m_like,
)
from repro.graph.build import build_interaction_graph
from repro.recommenders import PGPRRecommender


def main() -> None:
    print("=" * 72)
    print("Part 1 - the paper's worked example (Table I / Fig 1)")
    print("=" * 72)
    print(quick_demo())

    print()
    print("=" * 72)
    print("Part 2 - summarizing a real recommender's explanations")
    print("=" * 72)

    # 1. Build a small ML1M-shaped dataset and its knowledge graph.
    dataset = generate_ml1m_like(MovieLensSpec(scale=0.03, seed=7))
    graph = build_interaction_graph(dataset.ratings)
    attach_external_knowledge(
        graph, ExternalSchema.movies(), np.random.default_rng(0)
    )
    print(
        f"knowledge graph: {graph.num_nodes} nodes, "
        f"{graph.num_edges} edges"
    )

    # 2. Fit the PGPR simulator and fetch top-5 recommendations.
    recommender = PGPRRecommender().fit(graph, dataset.ratings)
    user = "u:1"
    recommendations = recommender.recommend(user, 5)
    print(f"\nPGPR explanations for {user}:")
    for rec in recommendations:
        print(f"  - {verbalize_path(rec.path, graph)}")

    # 3. Summarize them with the Steiner-Tree method.
    task = user_centric_task(recommendations, 5)
    summary = Summarizer(graph, method="ST", lam=100.0).summarize(task)
    total = sum(len(p) for p in task.paths)
    print(
        f"\nST summary ({total} path edges -> "
        f"{summary.subgraph.num_edges} summary edges):"
    )
    print(f"  {verbalize_summary(summary, graph, include_routes=True)}")


if __name__ == "__main__":
    main()
