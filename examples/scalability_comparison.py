"""Operations view: choosing ST vs PCST by deployment scale.

Times both summarizers on growing user groups and growing synthetic
graphs (Figs 10-11 in miniature) to show the crossover the paper reports:
ST gives the tightest summaries, PCST is the one that scales.

    python examples/scalability_comparison.py
"""

import time

import numpy as np

from repro.core import Summarizer, user_group_task
from repro.experiments.config import ExperimentConfig
from repro.experiments.workbench import Workbench
from repro.graph.generators import (
    SyntheticSpec,
    generate_random_kg,
    random_three_hop_paths,
)


def timed(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


def main() -> None:
    bench = Workbench.get(ExperimentConfig.test_scale(users_per_gender=8))
    per_user = bench.recommendations("PGPR")
    users = bench.sampled_users

    print("group-size sweep (ML1M-like graph)")
    print(f"{'group':>6} {'|T|':>5} {'ST (s)':>9} {'PCST (s)':>9} "
          f"{'ST edges':>9} {'PCST edges':>11}")
    st = Summarizer(bench.graph, method="ST", lam=1.0)
    pcst = Summarizer(bench.graph, method="PCST")
    for size in (2, 4, 8, len(users)):
        group = users[:size]
        task = user_group_task(group, per_user, bench.config.k_max)
        st_summary, st_time = timed(st.summarize, task)
        pcst_summary, pcst_time = timed(pcst.summarize, task)
        print(
            f"{size:>6} {len(task.terminals):>5} {st_time:>9.3f} "
            f"{pcst_time:>9.3f} {st_summary.subgraph.num_edges:>9} "
            f"{pcst_summary.subgraph.num_edges:>11}"
        )

    print("\ngraph-size sweep (synthetic Table III shapes)")
    print(f"{'nodes':>7} {'edges':>8} {'ST (s)':>9} {'PCST (s)':>9}")
    rng = np.random.default_rng(3)
    for total_nodes in (200, 400, 800):
        spec = SyntheticSpec(total_nodes, edges_per_node=20.0)
        graph = generate_random_kg(spec, rng)
        group = [f"u:{i}" for i in range(8)]
        paths = random_three_hop_paths(graph, group, paths_per_user=6, rng=rng)
        if not paths:
            continue
        from repro.core.scenarios import Scenario, SummaryTask

        items = tuple(dict.fromkeys(p.item for p in paths))
        present = tuple(
            u for u in group if any(p.user == u for p in paths)
        )
        task = SummaryTask(
            scenario=Scenario.USER_GROUP,
            terminals=(*present, *items),
            paths=tuple(paths),
            anchors=items,
            focus=present,
        )
        _, st_time = timed(
            Summarizer(graph, method="ST", lam=1.0).summarize, task
        )
        _, pcst_time = timed(
            Summarizer(graph, method="PCST").summarize, task
        )
        print(
            f"{graph.num_nodes:>7} {graph.num_edges:>8} "
            f"{st_time:>9.3f} {pcst_time:>9.3f}"
        )
    print(
        "\ntakeaway: ST minimizes summary size; PCST's runtime is nearly "
        "independent of the terminal count — pick by scale."
    )


if __name__ == "__main__":
    main()
