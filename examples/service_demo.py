"""Service API demo: one warm `ExplanationSession` serving traffic.

Shows the session facade end to end — typed configs, method routing
with per-request overrides, consecutive warm batches (no re-freeze for
an unchanged graph), automatic invalidation on mutation, the streaming
iterator, and the work-stealing scheduler's elastic worker pool
(`SchedulerConfig`: grow under queue pressure, steal accounting,
per-task result streaming). Runs in a few seconds::

    python examples/service_demo.py

This file is the deprecation canary: CI runs it under
``-W error::DeprecationWarning``, so it must never touch the legacy
``BatchSummarizer`` construction path.
"""

import time

import numpy as np

from repro.api import (
    CacheConfig,
    EngineConfig,
    ExplanationSession,
    ParallelConfig,
    SchedulerConfig,
    SummaryRequest,
    available_methods,
)
from repro.core.scenarios import user_centric_task
from repro.data import (
    ExternalSchema,
    MovieLensSpec,
    attach_external_knowledge,
    generate_ml1m_like,
)
from repro.graph.build import build_interaction_graph
from repro.recommenders import PGPRRecommender


def main() -> None:
    # 1. A small ML1M-shaped knowledge graph plus PGPR explanations.
    dataset = generate_ml1m_like(MovieLensSpec(scale=0.03, seed=7))
    graph = build_interaction_graph(dataset.ratings)
    attach_external_knowledge(
        graph, ExternalSchema.movies(), np.random.default_rng(0)
    )
    recommender = PGPRRecommender().fit(graph, dataset.ratings)
    users = [u for u in list(graph.nodes())[:400] if u.startswith("u:")][:12]
    tasks = [
        user_centric_task(recommender.recommend(user, 5), 5)
        for user in users
    ]
    print(
        f"graph: {graph.num_nodes} nodes / {graph.num_edges} edges; "
        f"{len(tasks)} user-centric tasks; methods: "
        f"{', '.join(available_methods())}"
    )

    # 2. One session owns the frozen view, caches and worker pool.
    session = ExplanationSession(
        graph,
        engine=EngineConfig(lam=1.0),
        cache=CacheConfig(partial_reuse=True),
        parallel=ParallelConfig(workers=2),
        default_method="st",
    )
    with session:
        # One-off requests, routed by method name with per-request
        # overrides — no summarizer construction in sight.
        one = session.explain(tasks[0])
        pcst = session.explain(SummaryRequest(task=tasks[0], method="pcst"))
        sticky = session.explain(
            SummaryRequest(task=tasks[0], overrides={"lam": 100.0})
        )
        print(
            f"\nexplain(): st={one.subgraph.num_edges} edges, "
            f"pcst={pcst.subgraph.num_edges} edges, "
            f"st(λ=100)={sticky.subgraph.num_edges} edges"
        )

        # Two consecutive batches: the second reuses everything warm.
        first = session.run(tasks)
        second = session.run(tasks)
        print("\nfirst batch:")
        print(first.summary())
        print("\nsecond batch (warm — closures cached, no re-freeze):")
        print(second.summary())
        print(
            f"session stats after 2 batches: freezes={session.stats.freezes} "
            f"invalidations={session.stats.invalidations}"
        )

        # Mutating the graph invalidates derived state exactly once.
        some_user = users[0]
        neighbor = next(iter(graph.neighbors(some_user)))
        graph.set_weight(some_user, neighbor, 4.5)
        session.run(tasks)
        print(
            f"after a graph mutation + 1 batch: freezes="
            f"{session.stats.freezes} "
            f"invalidations={session.stats.invalidations}"
        )

        # Streaming: each result arrives the moment it is finished.
        print("\nstreaming the batch:")
        for done, result in enumerate(session.stream(tasks[:6]), start=1):
            print(
                f"  [{done}/6] task #{result.index}: "
                f"{result.explanation.subgraph.num_edges} edges "
                f"in {result.latency_ms:.2f} ms"
            )

    # 3. The work-stealing scheduler with an elastic process pool: one
    # shared task queue, per-task pulls (a slow task occupies exactly
    # one worker), pool growth under queue pressure, and per-task
    # result streaming straight out of the workers.
    print("\nwork-stealing scheduler (elastic process pool):")
    with ExplanationSession(
        graph,
        parallel=ParallelConfig(backend="processes", workers=1),
        scheduler=SchedulerConfig(min_workers=1, max_workers=3),
    ) as serving:
        start = time.perf_counter()
        for done, result in enumerate(serving.stream(tasks), start=1):
            if done == 1:
                first_ms = (time.perf_counter() - start) * 1000.0
                print(f"  first result streamed after {first_ms:.0f} ms")
        report = serving.run(tasks)  # warm pool, same results
        stats = serving.stats
        print(
            f"  warm batch: {report.throughput:.1f} tasks/s "
            f"(p50 {report.latency_p50_ms:.2f} ms / "
            f"p95 {report.latency_p95_ms:.2f} ms per task)"
        )
        print(
            f"  scheduler stats: steals={stats.steals} "
            f"grows={stats.grows} shrinks={stats.shrinks} "
            f"peak_queue_depth={stats.peak_queue_depth}"
        )


if __name__ == "__main__":
    main()
