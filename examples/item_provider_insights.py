"""Item-provider view: why does the system recommend *my* item?

Reproduces the paper's item-centric and item-group scenarios: a provider
inspects one item's audience (C_i) and a whole catalog segment's summary,
comparing the ST and PCST renderings.

    python examples/item_provider_insights.py
"""

from repro.core import (
    Summarizer,
    item_centric_task,
    item_group_task,
    verbalize_summary,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.workbench import Workbench
from repro.metrics import evaluate_explanation
from repro.recommenders.base import invert_recommendations


def main() -> None:
    bench = Workbench.get(ExperimentConfig.test_scale(eval_items=6))
    graph = bench.graph
    per_user = bench.recommendations("CAFE")
    by_item = invert_recommendations(per_user, bench.config.k_max)

    # Pick the most-recommended item as "our" item.
    item = max(by_item, key=lambda i: len(by_item[i]))
    audience = {rec.user for rec in by_item[item]}
    print(f"item {item} was recommended to {len(audience)} sampled users")

    task = item_centric_task(item, by_item[item])
    for method in ("ST", "PCST"):
        summary = Summarizer(graph, method=method).summarize(task)
        report = evaluate_explanation(summary, graph)
        print(f"\n[{method}] item-centric summary "
              f"({summary.subgraph.num_edges} edges)")
        print(f"  {verbalize_summary(summary, graph)}")
        print(
            "  metrics: "
            + ", ".join(
                f"{name}={value:.3f}"
                for name, value in report.as_dict().items()
            )
        )

    # Item-group: a catalog segment (three items together).
    segment = [i for i in by_item if by_item[i]][:3]
    group_task = item_group_task(segment, by_item)
    summary = Summarizer(graph, method="PCST").summarize(group_task)
    print(f"\n[PCST] item-group summary for segment {segment}")
    print(f"  {verbalize_summary(summary, graph)}")
    print(
        f"  terminals covered: {len(summary.covered_terminals)}/"
        f"{len(group_task.terminals)}"
    )


if __name__ == "__main__":
    main()
