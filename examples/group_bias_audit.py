"""Model-developer view: auditing explanation quality across groups.

Combines the paper's user-group summaries with the fairness slicing
(§VII / Fig 17): do male and female users, or popular and unpopular
items, receive explanations of different quality?

    python examples/group_bias_audit.py
"""

from repro.core import Summarizer, user_group_task, verbalize_summary
from repro.experiments.config import ExperimentConfig
from repro.experiments.fairness import item_fairness, user_fairness
from repro.experiments.workbench import Workbench


def main() -> None:
    bench = Workbench.get(ExperimentConfig.test_scale())
    per_user = bench.recommendations("PGPR")

    # 1. One summary per demographic group.
    print("user-group summaries by gender")
    print("-" * 60)
    for label, members in bench.user_groups.items():
        task = user_group_task(members, per_user, k=4)
        summary = Summarizer(bench.graph, method="ST", lam=1.0).summarize(
            task
        )
        print(
            f"[{label}] {len(members)} users, "
            f"{len(task.paths)} paths -> "
            f"{summary.subgraph.num_edges} summary edges"
        )
        print(f"  {verbalize_summary(summary, bench.graph)[:140]}...")

    # 2. Metric gaps between groups, per method.
    print("\nexplanation-fairness gaps (comprehensibility)")
    print("-" * 60)
    for method_label in ("baseline", "ST λ=1", "PCST"):
        user_report = user_fairness(
            bench, "PGPR", "comprehensibility", method_label, k=4
        )
        item_report = item_fairness(
            bench, "PGPR", "comprehensibility", method_label, k=4
        )
        print(
            f"{method_label:10s} gender gap={user_report.max_gap:.4f} "
            f"{user_report.group_means} | popularity "
            f"gap={item_report.max_gap:.4f}"
        )
    print(
        "\n(The paper's Fig 17 finding: baselines explain unpopular items "
        "much worse; the summarizers do not inherit that bias.)"
    )


if __name__ == "__main__":
    main()
