"""Observability demo: tracing, metrics and structured slow-logs.

Shows the telemetry stack end to end — a traced session over the
process backend, the per-request span tree (`session.last_trace()` /
`BatchResult.trace`), the process-wide Prometheus registry, and the
slow-request structured log line. Runs in a few seconds::

    python examples/obs_demo.py

The same telemetry is reachable over the network: start a server with
``repro-xsum serve --trace`` and use ``client.trace()`` /
``client.metrics()`` (or the ``repro-xsum metrics`` CLI probe).
"""

import numpy as np

from repro.api import (
    ExplanationSession,
    ObservabilityConfig,
    ParallelConfig,
)
from repro.core.scenarios import user_centric_task
from repro.data import MovieLensSpec, generate_ml1m_like
from repro.graph.build import build_interaction_graph
from repro.obs import format_trace
from repro.obs.registry import get_registry
from repro.recommenders import PGPRRecommender


def main() -> None:
    # 1. A small ML1M-shaped graph plus PGPR explanation tasks.
    dataset = generate_ml1m_like(MovieLensSpec(scale=0.03, seed=7))
    graph = build_interaction_graph(dataset.ratings)
    recommender = PGPRRecommender().fit(graph, dataset.ratings)
    users = [u for u in list(graph.nodes())[:400] if u.startswith("u:")][:8]
    tasks = [
        user_centric_task(recommender.recommend(user, 5), 5)
        for user in users
    ]
    print(
        f"graph: {graph.num_nodes} nodes / {graph.num_edges} edges; "
        f"{len(tasks)} tasks"
    )

    # 2. A traced session: tracing is opt-in (metrics are on by
    # default); slow_ms=1.0 logs any request slower than 1ms as one
    # structured line — absurdly low here so the demo always shows it.
    with ExplanationSession(
        graph,
        parallel=ParallelConfig(backend="processes", workers=2),
        obs=ObservabilityConfig(trace=True, slow_ms=1.0),
    ) as session:
        report = session.run(tasks)
        print(f"\nbatch done: {report.throughput:.1f} tasks/s")

        # The whole request as one span tree: session freeze/export,
        # pool spin-up, dispatch, then per-task groups holding the
        # scheduler queue-wait and the worker compute/encode spans
        # that rode home on the existing result pipe.
        print("\nthe request's span tree:")
        print(format_trace(session.last_trace()))

        # Each result also carries just its own task's subtree.
        spans = report.results[0].trace["spans"]
        print(
            f"\nresult #0 carries {len(spans)} spans: "
            + ", ".join(span["name"] for span in spans)
        )

    # 3. The process-wide metrics registry (always on unless disabled):
    # Prometheus text exposition, served over TCP by the `metrics` op.
    text = get_registry().render()
    print("\nmetrics exposition (first lines):")
    for line in text.splitlines()[:12]:
        print(f"  {line}")
    print("  ...")


if __name__ == "__main__":
    main()
