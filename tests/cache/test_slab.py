"""SlabAllocator: first-fit alloc/free, coalescing, accounting."""

from repro.cache.slab import ALIGN, SlabAllocator, aligned


def make_slab(capacity: int = 1024):
    buf = bytearray(ALIGN + capacity)
    return SlabAllocator(buf, capacity, fresh=True), buf


class TestAligned:
    def test_rounds_up_to_granularity(self):
        assert aligned(1) == ALIGN
        assert aligned(ALIGN) == ALIGN
        assert aligned(ALIGN + 1) == 2 * ALIGN

    def test_zero_gets_a_chunk(self):
        assert aligned(0) == ALIGN


class TestAllocFree:
    def test_alloc_returns_disjoint_offsets(self):
        slab, _ = make_slab()
        offsets = [slab.alloc(32) for _ in range(4)]
        assert None not in offsets
        spans = sorted((o, o + aligned(32)) for o in offsets)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start

    def test_exhaustion_returns_none(self):
        slab, _ = make_slab(capacity=64)
        assert slab.alloc(64) is not None
        assert slab.alloc(16) is None

    def test_free_makes_space_reusable(self):
        slab, _ = make_slab(capacity=64)
        offset = slab.alloc(64)
        assert slab.alloc(16) is None
        slab.free(offset, 64)
        assert slab.alloc(64) is not None

    def test_oversized_request_fails_cleanly(self):
        slab, _ = make_slab(capacity=64)
        assert slab.alloc(65) is None
        assert slab.alloc(64) is not None  # slab undamaged


class TestCoalescing:
    def test_adjacent_frees_merge(self):
        slab, _ = make_slab(capacity=96)
        a = slab.alloc(32)
        b = slab.alloc(32)
        c = slab.alloc(32)
        assert slab.alloc(16) is None
        # Free middle then neighbors: must coalesce back to one run.
        slab.free(b, 32)
        slab.free(a, 32)
        slab.free(c, 32)
        assert slab.alloc(96) is not None

    def test_interleaved_free_order_still_coalesces(self):
        slab, _ = make_slab(capacity=128)
        offsets = [slab.alloc(32) for _ in range(4)]
        for offset in (offsets[2], offsets[0], offsets[3], offsets[1]):
            slab.free(offset, 32)
        assert len(slab.free_chunks()) == 1
        assert slab.alloc(128) is not None

    def test_first_fit_reuses_earliest_hole(self):
        slab, _ = make_slab(capacity=128)
        a = slab.alloc(32)
        slab.alloc(32)
        c = slab.alloc(32)
        slab.free(a, 32)
        slab.free(c, 32)
        assert slab.alloc(16) == a


class TestAccounting:
    def test_bytes_used_tracks_aligned_sizes(self):
        slab, _ = make_slab()
        assert slab.bytes_used == 0
        offset = slab.alloc(20)  # rounds to 32
        assert slab.bytes_used == aligned(20)
        slab.free(offset, 20)
        assert slab.bytes_used == 0

    def test_reattach_preserves_state(self):
        slab, buf = make_slab(capacity=128)
        offset = slab.alloc(48)
        view = SlabAllocator(buf, 128, fresh=False)
        assert view.bytes_used == aligned(48)
        view.free(offset, 48)
        assert view.bytes_used == 0
        assert slab.bytes_used == 0  # same backing header
