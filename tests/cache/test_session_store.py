"""Shared closure store through the session, server and process pools.

The acceptance contract of the cross-worker store:

- summaries are **bit-identical** with the store on vs. off, on every
  backend × scheduler combination;
- ``SessionStats`` surfaces the store counters, and the process
  backends see real cross-worker hits;
- no ``/dev/shm`` residue after teardown, invalidation, or ``kill -9``
  of the owning process (the resource tracker unlinks on its behalf);
- eviction under concurrent dispatch (two overlapping ``stream()``
  batches against a deliberately tiny slab) stays correct;
- the network server reports store counters through ``stats`` and
  ``health``.
"""

import glob
import os
import subprocess
import sys
import time
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.api import (
    ClosureStoreConfig,
    ExplanationSession,
    ParallelConfig,
    SchedulerConfig,
)
from repro.core.scenarios import Scenario, SummaryTask
from repro.graph.generators import SyntheticSpec, generate_random_kg
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.paths import Path as GraphPath

SRC = Path(__file__).resolve().parents[2] / "src"

STORE = ClosureStoreConfig(enabled=True, capacity_bytes=1 << 20)


def synthetic_graph(total_nodes: int = 300) -> KnowledgeGraph:
    spec = SyntheticSpec(total_nodes, edges_per_node=6.0)
    return generate_random_kg(spec, np.random.default_rng(11))


def shared_tasks(graph: KnowledgeGraph, count: int) -> list[SummaryTask]:
    """Tasks over one hot terminal set (λ boost empty → one signature)."""
    users = sorted(n for n in graph.nodes() if n.startswith("u:"))
    items = sorted(n for n in graph.nodes() if n.startswith("i:"))
    tasks = []
    for i in range(count):
        group = (users[i % 8], users[(i + 1) % 8])
        tasks.append(
            SummaryTask(
                scenario=Scenario.USER_GROUP,
                terminals=(*group, *items[:3]),
                paths=(),
                anchors=tuple(items[:3]),
                focus=group,
            )
        )
    return tasks


def boosted_tasks(graph: KnowledgeGraph, count: int) -> list[SummaryTask]:
    """Tasks whose boost paths exercise λ-aware partial reuse."""
    users = sorted(n for n in graph.nodes() if n.startswith("u:"))
    tasks = []
    for i in range(count):
        user = users[i % 6]
        neighbors = sorted(graph.neighbors(user))[:2]
        if not neighbors:
            continue
        tasks.append(
            SummaryTask(
                scenario=Scenario.USER_CENTRIC,
                terminals=(user, *neighbors),
                paths=tuple(
                    GraphPath(nodes=(user, item)) for item in neighbors
                ),
                anchors=tuple(neighbors),
                focus=(user,),
            )
        )
    assert tasks
    return tasks


def canonical(report) -> list:
    out = []
    for result in report.results:
        assert result.failure is None, result.failure
        subgraph = result.explanation.subgraph
        out.append(
            (
                list(subgraph.nodes()),
                sorted(
                    (e.source, e.target, e.weight)
                    for e in subgraph.edges()
                ),
            )
        )
    return out


def run_session(graph, tasks, *, store, backend, mode) -> tuple:
    with warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        session = ExplanationSession(
            graph,
            parallel=ParallelConfig(backend=backend, workers=2),
            scheduler=SchedulerConfig(mode=mode),
            store=store,
        )
        with session:
            report = session.run(tasks)
            stats = session.stats
            return canonical(report), report, stats


class TestBitIdentity:
    @pytest.mark.parametrize(
        ("backend", "mode"),
        [
            ("serial", "work-stealing"),
            ("threads", "work-stealing"),
            ("threads", "chunked"),
            ("processes", "work-stealing"),
            ("processes", "chunked"),
        ],
    )
    @pytest.mark.parametrize("task_maker", [shared_tasks, boosted_tasks])
    def test_store_on_matches_store_off(self, backend, mode, task_maker):
        graph = synthetic_graph()
        tasks = task_maker(graph, 12)
        baseline, _report, _stats = run_session(
            graph, tasks, store=None, backend=backend, mode=mode
        )
        stored, report, stats = run_session(
            graph, tasks, store=STORE, backend=backend, mode=mode
        )
        assert stored == baseline
        # The store was really in play, not silently disabled.
        assert stats.store_hits + stats.store_misses > 0
        assert report.store_hits + report.store_misses > 0


class TestStats:
    def test_process_workers_share_work(self):
        graph = synthetic_graph()
        tasks = shared_tasks(graph, 16)
        _c, report, stats = run_session(
            graph,
            tasks,
            store=STORE,
            backend="processes",
            mode="work-stealing",
        )
        assert report.store_hits > 0  # a sibling's run was reused
        assert stats.store_hits > 0
        assert stats.store_bytes > 0
        assert stats.cache_line() is not None

    def test_store_stats_live_and_none_when_off(self):
        graph = synthetic_graph()
        tasks = shared_tasks(graph, 4)
        with ExplanationSession(graph, store=STORE) as session:
            session.run(tasks)
            live = session.store_stats()
            assert live is not None
            assert live["publishes"] > 0
            assert 0 < live["bytes_used"] <= live["capacity_bytes"]
        with ExplanationSession(graph) as session:
            session.run(tasks)
            assert session.store_stats() is None

    def test_report_summary_mentions_store(self):
        graph = synthetic_graph()
        tasks = shared_tasks(graph, 8)
        _c, report, _s = run_session(
            graph,
            tasks,
            store=STORE,
            backend="processes",
            mode="work-stealing",
        )
        assert "store" in report.summary()


class TestHygiene:
    def shm_tokens(self) -> set:
        return set(glob.glob("/dev/shm/rxc*"))

    def test_close_removes_blocks(self):
        graph = synthetic_graph(120)
        before = self.shm_tokens()
        session = ExplanationSession(graph, store=STORE)
        session.run(shared_tasks(graph, 4))
        assert self.shm_tokens() - before  # store blocks live
        session.close()
        assert self.shm_tokens() <= before

    def test_mutation_rebuilds_store(self):
        graph = synthetic_graph(120)
        before = self.shm_tokens()
        with ExplanationSession(graph, store=STORE) as session:
            session.run(shared_tasks(graph, 4))
            first = self.shm_tokens() - before
            assert first
            graph.add_edge("u:0", "i:9999", 3.0)
            session.run(shared_tasks(graph, 4))
            second = self.shm_tokens() - before
            assert second and not (second & first)  # fresh blocks
            assert session.stats.invalidations == 1
        assert self.shm_tokens() <= before

    def test_pool_release_keeps_store_warm(self):
        graph = synthetic_graph(120)
        with ExplanationSession(graph, store=STORE) as session:
            session.run(shared_tasks(graph, 4))
            tokens = self.shm_tokens()
            session.release_pool()
            assert self.shm_tokens() == tokens  # store survives
            session.run(shared_tasks(graph, 4))

    def test_kill_dash_nine_leaves_no_residue(self, tmp_path):
        """The resource tracker unlinks the blocks of a SIGKILLed owner."""
        script = tmp_path / "owner.py"
        script.write_text(
            "import time\n"
            "import numpy as np\n"
            "from repro.api import ClosureStoreConfig, ExplanationSession\n"
            "from repro.core.scenarios import Scenario, SummaryTask\n"
            "from repro.graph.generators import ("
            "SyntheticSpec, generate_random_kg)\n"
            "graph = generate_random_kg("
            "SyntheticSpec(120, edges_per_node=6.0), "
            "np.random.default_rng(11))\n"
            "users = sorted(n for n in graph.nodes()"
            " if n.startswith('u:'))\n"
            "items = sorted(n for n in graph.nodes()"
            " if n.startswith('i:'))\n"
            "task = SummaryTask(scenario=Scenario.USER_GROUP, "
            "terminals=(users[0], users[1], *items[:3]), paths=(), "
            "anchors=tuple(items[:3]), focus=(users[0], users[1]))\n"
            "session = ExplanationSession(graph, store=ClosureStoreConfig("
            "enabled=True, capacity_bytes=1 << 20))\n"
            "session.run([task, task])\n"
            "print(session._store.handle.token, flush=True)\n"
            "time.sleep(60)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.Popen(
            [sys.executable, str(script)],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            token = proc.stdout.readline().strip()
            assert token.startswith("rxc"), token
            assert glob.glob(f"/dev/shm/{token}*")  # blocks exist
            proc.kill()  # SIGKILL: no atexit, no __del__, nothing
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
        # The killed interpreter's resource tracker outlives it briefly
        # and unlinks everything still registered.
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            if not glob.glob(f"/dev/shm/{token}*"):
                break
            time.sleep(0.1)
        assert not glob.glob(f"/dev/shm/{token}*")


class TestEvictionUnderDispatch:
    def test_overlapping_streams_with_tiny_store(self):
        """Two interleaved stream() batches against a slab far too
        small for the working set: constant eviction churn, zero wrong
        answers."""
        graph = synthetic_graph()
        tasks = shared_tasks(graph, 10) + boosted_tasks(graph, 6)
        baseline, _r, _s = run_session(
            graph,
            tasks,
            store=None,
            backend="processes",
            mode="work-stealing",
        )
        tiny = ClosureStoreConfig(
            enabled=True,
            capacity_bytes=8192,
            directory_slots=64,
            stripes=4,
            admission="admit-all",
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            session = ExplanationSession(
                graph,
                parallel=ParallelConfig(backend="processes", workers=2),
                store=tiny,
            )
            with session:
                first = session.stream(tasks)
                second = session.stream(tasks)
                results = {}
                for stream, bucket in ((first, {}), (second, {})):
                    results[id(stream)] = bucket
                    for result in stream:
                        assert result.failure is None
                        bucket[result.index] = result
                live = session.store_stats()
                assert live is not None
                assert live["bytes_used"] <= live["capacity_bytes"]
                for bucket in results.values():
                    assert sorted(bucket) == list(range(len(tasks)))
                    got = [
                        (
                            list(r.explanation.subgraph.nodes()),
                            sorted(
                                (e.source, e.target, e.weight)
                                for e in r.explanation.subgraph.edges()
                            ),
                        )
                        for _i, r in sorted(bucket.items())
                    ]
                    assert got == baseline


class TestServerIntegration:
    def test_stats_and_health_expose_store(self):
        from repro.serving.client import ExplanationClient
        from repro.serving.server import ExplanationServer, ServerThread

        graph = synthetic_graph(120)
        tasks = shared_tasks(graph, 4)
        server = ExplanationServer(graph, store=STORE)
        with ServerThread(server) as thread:
            with ExplanationClient("127.0.0.1", thread.port) as client:
                report = client.run(tasks)
                assert report.store_hits + report.store_misses > 0
                stats = client.stats()
                assert stats["store"] is not None
                assert stats["store"]["publishes"] > 0
                assert stats["session"]["store_misses"] > 0
                health = client.health()
                info = health["graphs"]["default"]
                assert info["store"]["capacity_bytes"] == (
                    stats["store"]["capacity_bytes"]
                )

    def test_stats_store_none_when_disabled(self):
        from repro.serving.client import ExplanationClient
        from repro.serving.server import ExplanationServer, ServerThread

        graph = synthetic_graph(120)
        server = ExplanationServer(graph)
        with ServerThread(server) as thread:
            with ExplanationClient("127.0.0.1", thread.port) as client:
                client.run(shared_tasks(graph, 2))
                assert client.stats()["store"] is None
                info = client.health()["graphs"]["default"]
                assert "store" not in info
