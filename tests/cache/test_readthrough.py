"""StoreBackedClosureCache: read-through semantics and bit parity.

Two caches sharing one store stand in for two pool workers: what one
computes and publishes, the other must fetch — decoded to exactly the
``(dist, prev)`` a fresh local Dijkstra produces, settle order
included.
"""

import multiprocessing

from repro.cache import (
    ClosureStoreConfig,
    SharedClosureStore,
    StoreBackedClosureCache,
)
from repro.core.batch import TerminalClosureCache
from repro.graph.csr import FrozenCosts
from repro.graph.knowledge_graph import KnowledgeGraph


def small_graph() -> KnowledgeGraph:
    graph = KnowledgeGraph()
    graph.add_edge("u:0", "i:0", 5.0)
    graph.add_edge("u:0", "i:2", 3.0)
    graph.add_edge("u:1", "i:1", 4.0)
    graph.add_edge("i:0", "e:genre:0", 0.0, "genre")
    graph.add_edge("i:1", "e:genre:0", 0.0, "genre")
    graph.add_edge("i:2", "e:director:0", 0.0, "director")
    graph.add_edge("i:1", "e:director:0", 0.0, "director")
    return graph


def make_store() -> SharedClosureStore:
    return SharedClosureStore.create(
        ClosureStoreConfig(enabled=True, capacity_bytes=1 << 16),
        multiprocessing.get_context(),
    )


def unit_costs(frozen, signature=("unit",)) -> FrozenCosts:
    return FrozenCosts(
        list(frozen.shared_unit_costs()), signature=signature
    )


class TestClosureReadThrough:
    def test_publish_then_fetch_across_caches(self):
        frozen = small_graph().freeze()
        with make_store() as store:
            writer = StoreBackedClosureCache(64, store=store)
            reader = StoreBackedClosureCache(64, store=store)
            rest = {"i:1", "e:genre:0"}
            published = writer.pair_fn(frozen, unit_costs(frozen))(
                "u:0", rest
            )
            assert writer.misses == 1  # fresh compute + publish
            fetched = reader.pair_fn(frozen, unit_costs(frozen))(
                "u:0", rest
            )
            assert reader.store_hits == 1
            assert reader.misses == 0  # served without a local Dijkstra
            assert reader.hits == 1  # a usable fetch counts as a hit
            assert fetched == published
            # Settle (dict iteration) order is preserved exactly.
            assert list(fetched[0]) == list(published[0])
            assert list(fetched[1]) == list(published[1])

    def test_parity_with_plain_cache(self):
        frozen = small_graph().freeze()
        plain = TerminalClosureCache(64)
        rest = {"i:1", "e:genre:0"}
        expected = plain.pair_fn(frozen, unit_costs(frozen))("u:0", rest)
        with make_store() as store:
            writer = StoreBackedClosureCache(64, store=store)
            writer.pair_fn(frozen, unit_costs(frozen))("u:0", rest)
            reader = StoreBackedClosureCache(64, store=store)
            got = reader.pair_fn(frozen, unit_costs(frozen))("u:0", rest)
        assert got == expected
        assert list(got[0]) == list(expected[0])

    def test_opaque_signature_bypasses_store(self):
        frozen = small_graph().freeze()
        with make_store() as store:
            writer = StoreBackedClosureCache(64, store=store)
            # Anonymous surface: signature embeds an object() sentinel.
            anon = FrozenCosts(list(frozen.shared_unit_costs()))
            writer.pair_fn(frozen, anon)("u:0", {"i:0"})
            assert store.stats()["publishes"] == 0
            assert writer.store_hits == 0
            assert writer.store_misses == 0

    def test_shallow_entry_not_reused_for_wider_targets(self):
        frozen = small_graph().freeze()
        with make_store() as store:
            writer = StoreBackedClosureCache(64, store=store)
            writer.pair_fn(frozen, unit_costs(frozen))("u:0", {"i:0"})
            reader = StoreBackedClosureCache(64, store=store)
            # Every node reachable: the shallow run may not cover it.
            wide = set(frozen.ids)
            dist, _prev = reader.pair_fn(frozen, unit_costs(frozen))(
                "u:0", wide
            )
            assert wide <= dist.keys()  # correctness regardless of path


class TestBaseRunReadThrough:
    def test_base_runs_travel_between_caches(self):
        frozen = small_graph().freeze()
        with make_store() as store:
            writer = StoreBackedClosureCache(
                64, partial_reuse=True, store=store
            )
            d1, p1 = writer._base_run(frozen, frozen.index_of("u:0"))
            assert writer.base_misses == 1
            reader = StoreBackedClosureCache(
                64, partial_reuse=True, store=store
            )
            d2, p2 = reader._base_run(frozen, frozen.index_of("u:0"))
            assert reader.store_hits == 1
            assert reader.base_hits == 1
            assert d2 == d1 and p2 == p1
            assert list(d2) == list(d1)

    def test_fetch_respects_covering_check(self):
        frozen = small_graph().freeze()
        with make_store() as store:
            writer = StoreBackedClosureCache(
                64, partial_reuse=True, store=store
            )
            index = frozen.index_of("u:0")
            # Publish a radius-bounded run...
            writer._base_run(frozen, index, radius=1.0)
            reader = StoreBackedClosureCache(
                64, partial_reuse=True, store=store
            )
            # ...then ask for the whole component: the bounded entry
            # fails the covering check and a fresh run replaces it.
            full, _ = reader._base_run(frozen, index)
            assert reader.store_misses >= 1
            assert len(full) == len(frozen.ids)

    def test_store_degrades_after_teardown(self):
        """A torn-down store mid-flight degrades to local compute."""
        frozen = small_graph().freeze()
        store = make_store()
        cache = StoreBackedClosureCache(64, store=store)
        store.close()
        store.unlink()
        dist, _prev = cache.pair_fn(frozen, unit_costs(frozen))(
            "u:0", {"i:0"}
        )
        assert "i:0" in dist
