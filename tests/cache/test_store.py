"""SharedClosureStore: directory, eviction, admission, attachment."""

import glob
import multiprocessing
import os
import subprocess
import sys

import pytest

from repro.cache import ClosureStoreConfig, SharedClosureStore
from repro.cache.store import (
    base_store_key,
    closure_store_key,
    store_digest,
)


def make_store(**overrides) -> SharedClosureStore:
    defaults = dict(
        enabled=True,
        capacity_bytes=4096,
        directory_slots=64,
        stripes=4,
        sketch_width=64,
    )
    defaults.update(overrides)
    config = ClosureStoreConfig(**defaults)
    return SharedClosureStore.create(
        config, multiprocessing.get_context()
    )


def digest_of(tag: str) -> bytes:
    return store_digest(b"test:" + tag.encode())


class TestRoundTrip:
    def test_put_then_get(self):
        with make_store() as store:
            digest = digest_of("a")
            assert store.get(digest) is None
            assert store.put(digest, b"payload-bytes", ndist=3)
            assert store.get(digest) == b"payload-bytes"

    def test_counters_track_operations(self):
        with make_store() as store:
            digest = digest_of("a")
            store.get(digest)
            store.put(digest, b"x" * 20, ndist=1)
            store.get(digest)
            stats = store.stats()
            assert stats["hits"] == 1
            assert stats["misses"] == 1
            assert stats["publishes"] == 1
            assert stats["entries"] == 1
            assert stats["bytes_used"] > 0

    def test_replace_only_if_more_settled(self):
        with make_store() as store:
            digest = digest_of("a")
            assert store.put(digest, b"first", ndist=5)
            # Same or fewer settled nodes: the incumbent stays.
            assert not store.put(digest, b"second", ndist=5)
            assert store.get(digest) == b"first"
            # Strictly more settled: replaced in place.
            assert store.put(digest, b"third", ndist=6)
            assert store.get(digest) == b"third"

    def test_oversized_payload_rejected(self):
        with make_store(capacity_bytes=4096) as store:
            assert not store.put(digest_of("big"), b"x" * 3000, ndist=1)

    def test_attach_sees_parent_writes(self):
        store = make_store()
        try:
            digest = digest_of("shared")
            store.put(digest, b"from-parent", ndist=1)
            view = SharedClosureStore.attach(store.handle)
            assert view.get(digest) == b"from-parent"
            view.put(digest_of("back"), b"from-view", ndist=1)
            assert store.get(digest_of("back")) == b"from-view"
            view.close()
        finally:
            store.close()
            store.unlink()


class TestEviction:
    def test_capacity_pressure_evicts(self):
        with make_store(capacity_bytes=4096, admission="admit-all") as store:
            for i in range(12):
                assert store.put(
                    digest_of(f"k{i}"), bytes(500), ndist=i + 1
                )
            stats = store.stats()
            assert stats["evictions"] > 0
            # Occupancy stays within capacity.
            assert stats["bytes_used"] <= stats["capacity_bytes"]

    def test_attach_after_eviction_is_safe(self):
        """A reader holding an attachment across evictions never sees
        recycled bytes: get() copies under the stripe lock."""
        store = make_store(capacity_bytes=4096, admission="admit-all")
        try:
            view = SharedClosureStore.attach(store.handle)
            survivor = digest_of("keep")
            store.put(survivor, b"S" * 400, ndist=99)
            for i in range(16):
                store.put(digest_of(f"churn{i}"), bytes(400), ndist=1)
            payload = view.get(survivor)
            assert payload in (None, b"S" * 400)  # evicted or intact
            view.close()
        finally:
            store.close()
            store.unlink()

    def test_tinylfu_protects_popular_entries(self):
        with make_store(capacity_bytes=4096, admission="tinylfu") as store:
            hot = digest_of("hot")
            store.put(hot, b"H" * 400, ndist=50)
            for _ in range(12):
                store.get(hot)  # poll the sketch
            # A stream of one-off newcomers needing the hot entry's
            # space: the strictly-greater gate sides with the incumbent.
            rejected = 0
            for i in range(10):
                if not store.put(
                    digest_of(f"cold{i}"), bytes(900), ndist=1
                ):
                    rejected += 1
            assert store.get(hot) == b"H" * 400
            assert rejected > 0
            assert store.stats()["rejections"] > 0

    def test_admit_all_always_displaces(self):
        with make_store(capacity_bytes=4096, admission="admit-all") as store:
            hot = digest_of("hot")
            store.put(hot, b"H" * 1500, ndist=50)
            for _ in range(12):
                store.get(hot)
            for i in range(6):
                assert store.put(
                    digest_of(f"cold{i}"), bytes(1000), ndist=1
                )
            assert store.stats()["rejections"] == 0


class TestLifecycle:
    def test_close_unlink_removes_blocks(self):
        store = make_store()
        names = store.handle.block_names()
        for name in names:
            assert os.path.exists(f"/dev/shm/{name}")
        store.close()
        store.unlink()
        for name in names:
            assert not os.path.exists(f"/dev/shm/{name}")

    def test_no_rxc_residue_after_context_exit(self):
        before = set(glob.glob("/dev/shm/rxc*"))
        with make_store() as store:
            token = store.handle.token
        after = set(glob.glob("/dev/shm/rxc*"))
        assert not {p for p in after - before if token in p}


class TestCanonicalKeys:
    def test_opaque_signature_tokens_bypass(self):
        assert closure_store_key(1, "u:0", (object(),)) is None
        assert (
            closure_store_key(1, "u:0", ((("x", object()),),)) is None
        )

    def test_encodable_signatures_key_stably(self):
        key = closure_store_key(
            3, "u:0", (("i:1", 2.5), ("i:2", 1), True, None)
        )
        assert key is not None
        assert key == closure_store_key(
            3, "u:0", (("i:1", 2.5), ("i:2", 1), True, None)
        )
        assert key != closure_store_key(
            4, "u:0", (("i:1", 2.5), ("i:2", 1), True, None)
        )

    def test_base_keys_distinguish_versions_and_indices(self):
        keys = {
            base_store_key(v, i) for v in (1, 2) for i in (0, 1, 7)
        }
        assert len(keys) == 6

    @pytest.mark.parametrize("seed", ["0", "1", "424242"])
    def test_digests_independent_of_hash_seed(self, seed):
        """Spawn workers inherit no hash seed; digests must not care."""
        script = (
            "from repro.cache.store import closure_store_key, "
            "base_store_key, store_digest\n"
            "key = closure_store_key(7, 'u:3', (('i:1', 2.0), 'rel'))\n"
            "print(store_digest(key).hex())\n"
            "print(store_digest(base_store_key(7, 11)).hex())\n"
        )
        env = dict(os.environ, PYTHONHASHSEED=seed)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        out = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.split()
        key = closure_store_key(7, "u:3", (("i:1", 2.0), "rel"))
        assert out[0] == store_digest(key).hex()
        assert out[1] == store_digest(base_store_key(7, 11)).hex()
