"""Shared fixtures: small deterministic graphs, datasets and workbenches.

Session scope keeps the expensive artifacts (dataset generation, model
fitting) to one build for the whole suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dbpedia import ExternalSchema, attach_external_knowledge
from repro.data.movielens import MovieLensSpec, generate_ml1m_like
from repro.experiments.config import ExperimentConfig
from repro.experiments.workbench import Workbench
from repro.graph.build import build_interaction_graph
from repro.graph.knowledge_graph import KnowledgeGraph


@pytest.fixture
def toy_graph() -> KnowledgeGraph:
    """Tiny hand-built KG: 2 users, 3 items, 2 entities.

    Layout (weights on interaction edges)::

        u:0 --5-- i:0 --- e:genre:0 --- i:1 --4-- u:1
        u:0 --3-- i:2 --- e:director:0 --- i:1
    """
    graph = KnowledgeGraph()
    graph.add_edge("u:0", "i:0", 5.0)
    graph.add_edge("u:0", "i:2", 3.0)
    graph.add_edge("u:1", "i:1", 4.0)
    graph.add_edge("i:0", "e:genre:0", 0.0, "genre")
    graph.add_edge("i:1", "e:genre:0", 0.0, "genre")
    graph.add_edge("i:2", "e:director:0", 0.0, "director")
    graph.add_edge("i:1", "e:director:0", 0.0, "director")
    return graph


@pytest.fixture(scope="session")
def small_dataset():
    """Small ML1M-like dataset (deterministic)."""
    return generate_ml1m_like(MovieLensSpec(scale=0.02, seed=5))


@pytest.fixture(scope="session")
def small_kg(small_dataset) -> KnowledgeGraph:
    """Knowledge graph over the small dataset, external layer attached."""
    graph = build_interaction_graph(small_dataset.ratings)
    return attach_external_knowledge(
        graph, ExternalSchema.movies(), np.random.default_rng(3)
    )


@pytest.fixture(scope="session")
def test_config() -> ExperimentConfig:
    return ExperimentConfig.test_scale()


@pytest.fixture(scope="session")
def test_bench(test_config) -> Workbench:
    """Shared test-scale workbench (built once per session)."""
    return Workbench.get(test_config)
