"""ExplanationSession service API: parity, warm resources, invalidation.

The acceptance contract for the service layer:

- every method x scenario combination routed through the session is
  bit-identical to the legacy entry points;
- consecutive ``run()`` calls on an unchanged graph skip re-freeze /
  re-export and reuse the warm process pool (asserted via the session's
  stats counters — this class of test is the CI warm-session smoke);
- a graph mutation between calls triggers exactly one rebuild.
"""

import warnings

import pytest

from repro.api import (
    CacheConfig,
    EngineConfig,
    ExplanationSession,
    MethodSpec,
    ParallelConfig,
    SummaryRequest,
    available_methods,
    method_spec,
    register_method,
    unregister_method,
)
from repro.core.scenarios import Scenario, SummaryTask
from repro.core.summarizer import METHODS, Summarizer
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.paths import Path

#: service-name -> legacy facade name, the full routing table.
METHOD_NAMES = {
    "st": "ST",
    "st-fast": "ST-fast",
    "pcst": "PCST",
    "union": "Union",
}


def canonical(explanation):
    """Comparable form of a summary: nodes plus weighted edge list."""
    subgraph = explanation.subgraph
    return (
        sorted(subgraph.nodes()),
        sorted((e.source, e.target, e.weight) for e in subgraph.edges()),
    )


@pytest.fixture(scope="module")
def scenario_tasks(test_bench):
    """A couple of tasks per scenario, drawn from the workbench."""
    tasks = {}
    for scenario in Scenario:
        pool = list(test_bench.tasks(scenario, "PGPR", 4).values())
        assert pool, scenario
        tasks[scenario] = pool[:2]
    return tasks


def small_graph() -> KnowledgeGraph:
    graph = KnowledgeGraph()
    graph.add_edge("u:0", "i:0", 5.0)
    graph.add_edge("u:0", "i:2", 3.0)
    graph.add_edge("u:1", "i:1", 4.0)
    graph.add_edge("i:0", "e:genre:0", 0.0, "genre")
    graph.add_edge("i:1", "e:genre:0", 0.0, "genre")
    graph.add_edge("i:2", "e:director:0", 0.0, "director")
    graph.add_edge("i:1", "e:director:0", 0.0, "director")
    return graph


def small_task(terminal: str = "i:1") -> SummaryTask:
    return SummaryTask(
        scenario=Scenario.USER_CENTRIC,
        terminals=("u:0", terminal),
        paths=(Path(nodes=("u:0", "i:0", "e:genre:0", terminal)),),
        anchors=(terminal,),
        focus=("u:0",),
        k=1,
    )


class TestParityWithLegacyEntryPoints:
    """All four methods x all four scenarios, bit-identical."""

    @pytest.mark.parametrize("name", sorted(METHOD_NAMES))
    @pytest.mark.parametrize("scenario", list(Scenario))
    def test_session_matches_summarizer(
        self, name, scenario, test_bench, scenario_tasks
    ):
        legacy = Summarizer(test_bench.graph, method=METHOD_NAMES[name])
        with ExplanationSession(test_bench.graph) as session:
            for task in scenario_tasks[scenario]:
                got = session.explain(
                    SummaryRequest(task=task, method=name)
                )
                assert canonical(got) == canonical(legacy.summarize(task))

    @pytest.mark.parametrize("name", sorted(METHOD_NAMES))
    def test_run_matches_legacy_batch(
        self, name, test_bench, scenario_tasks
    ):
        tasks = [t for pool in scenario_tasks.values() for t in pool]
        legacy = Summarizer(test_bench.graph, method=METHOD_NAMES[name])
        with ExplanationSession(
            test_bench.graph, default_method=name
        ) as session:
            report = session.run(tasks)
        assert report.method == METHOD_NAMES[name]
        assert [r.index for r in report.results] == list(range(len(tasks)))
        for task, result in zip(tasks, report.results):
            assert canonical(result.explanation) == canonical(
                legacy.summarize(task)
            )

    def test_legacy_method_names_route_as_aliases(self, test_bench):
        task = next(iter(test_bench.tasks(Scenario.USER_CENTRIC, "PGPR", 4).values()))
        with ExplanationSession(test_bench.graph) as session:
            for legacy_name in METHODS:
                got = session.explain(
                    SummaryRequest(task=task, method=legacy_name)
                )
                expected = Summarizer(
                    test_bench.graph, method=legacy_name
                ).summarize(task)
                assert canonical(got) == canonical(expected)

    def test_process_backend_parity(self, test_bench, scenario_tasks):
        tasks = [t for pool in scenario_tasks.values() for t in pool]
        with ExplanationSession(test_bench.graph) as serial_session:
            serial = serial_session.run(tasks)
        with ExplanationSession(
            test_bench.graph,
            parallel=ParallelConfig(backend="processes", workers=2),
        ) as session:
            processes = session.run(tasks)
        assert processes.parallel == "processes"
        for a, b in zip(serial.results, processes.results):
            assert canonical(a.explanation) == canonical(b.explanation)

    def test_per_request_overrides(self, test_bench, scenario_tasks):
        task = scenario_tasks[Scenario.USER_CENTRIC][0]
        with ExplanationSession(test_bench.graph) as session:
            got = session.explain(
                SummaryRequest(task=task, overrides={"lam": 100.0})
            )
        expected = Summarizer(
            test_bench.graph, method="ST", lam=100.0
        ).summarize(task)
        assert canonical(got) == canonical(expected)

    def test_bare_tasks_are_coerced(self, test_bench, scenario_tasks):
        tasks = scenario_tasks[Scenario.USER_CENTRIC]
        with ExplanationSession(test_bench.graph) as session:
            report = session.run(tasks)
        assert len(report.results) == len(tasks)
        assert report.method == "ST"


class TestWarmResources:
    """The CI warm-session smoke: two batches, one set of resources."""

    def test_consecutive_runs_reuse_pool_and_export(self):
        graph = small_graph()
        tasks = [small_task() for _ in range(6)]
        with ExplanationSession(
            graph, parallel=ParallelConfig(backend="processes", workers=2)
        ) as session:
            first = session.run(tasks)
            warm_stats = (
                session.stats.freezes,
                session.stats.exports,
                session.stats.pool_starts,
            )
            second = session.run(tasks)
            # No re-freeze, no re-export, no respawn for an unchanged
            # graph version — and the warm report shows it.
            assert warm_stats == (1, 1, 1)
            assert (
                session.stats.freezes,
                session.stats.exports,
                session.stats.pool_starts,
            ) == (1, 1, 1)
            assert second.freeze_seconds == 0.0
            assert session.stats.invalidations == 0
            for a, b in zip(first.results, second.results):
                assert canonical(a.explanation) == canonical(b.explanation)

    def test_mutation_triggers_exactly_one_rebuild(self):
        graph = small_graph()
        graph.add_edge("u:0", "i:1", 1.0)
        tasks = [small_task() for _ in range(6)]
        with ExplanationSession(
            graph, parallel=ParallelConfig(backend="processes", workers=2)
        ) as session:
            session.run(tasks)
            graph.set_weight("u:0", "i:1", 3.0)
            after = session.run(tasks)
            assert session.stats.invalidations == 1
            assert session.stats.freezes == 2
            assert session.stats.exports == 2
            assert session.stats.pool_starts == 2
            # The rebuilt state serves post-mutation results.
            weights = {
                e.key(): e.weight
                for e in after.results[0].explanation.subgraph.edges()
            }
            assert weights.get(("i:1", "u:0")) == 3.0
            # And only once: the next run stays warm.
            session.run(tasks)
            assert session.stats.invalidations == 1
            assert session.stats.exports == 2
            assert session.stats.pool_starts == 2

    def test_serial_path_reuses_closure_cache_across_runs(self):
        graph = small_graph()
        tasks = [small_task() for _ in range(3)]
        with ExplanationSession(graph) as session:
            first = session.run(tasks)
            second = session.run(tasks)
        assert first.cache_misses > 0 or first.cache_patched > 0
        # Warm run: every closure request is a cache hit.
        assert second.cache_misses == 0 and second.cache_patched == 0
        assert second.cache_hits > 0
        assert session.stats.freezes == 1

    def test_no_shared_memory_leak_after_close(self):
        import os

        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        before = {
            name
            for name in os.listdir("/dev/shm")
            if name.startswith("rxg")
        }
        graph = small_graph()
        with ExplanationSession(
            graph, parallel=ParallelConfig(backend="processes", workers=2)
        ) as session:
            session.run([small_task() for _ in range(4)])
        after = {
            name
            for name in os.listdir("/dev/shm")
            if name.startswith("rxg")
        }
        assert after <= before

    def test_closed_session_refuses_work(self):
        session = ExplanationSession(small_graph())
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.run([small_task()])

    def test_process_fallback_warns_and_stays_correct(self, monkeypatch):
        from repro.graph.csr import FrozenGraph

        def broken_export(self):
            raise OSError("no shared memory on this box")

        monkeypatch.setattr(FrozenGraph, "to_shared", broken_export)
        graph = small_graph()
        tasks = [small_task() for _ in range(3)]
        expected = [
            Summarizer(graph, method="ST").summarize(task) for task in tasks
        ]
        with ExplanationSession(
            graph, parallel=ParallelConfig(backend="processes")
        ) as session:
            with pytest.warns(RuntimeWarning, match="process backend"):
                report = session.run(tasks)
        assert report.parallel == "serial"
        for exp, result in zip(expected, report.results):
            assert canonical(exp) == canonical(result.explanation)


class TestStreaming:
    """stream() yields results as chunks complete, covering the batch."""

    @pytest.mark.parametrize(
        "parallel",
        [
            ParallelConfig(),
            ParallelConfig(backend="threads", workers=2),
            ParallelConfig(
                backend="processes", workers=2, chunk_size=2
            ),
        ],
        ids=["serial", "threads", "processes"],
    )
    def test_stream_covers_batch_with_identical_results(self, parallel):
        graph = small_graph()
        graph.add_edge("u:0", "i:1", 1.0)
        tasks = [small_task() for _ in range(6)]
        with ExplanationSession(graph) as reference:
            expected = reference.run(tasks)
        with ExplanationSession(graph, parallel=parallel) as session:
            streamed = list(session.stream(tasks))
        assert sorted(r.index for r in streamed) == list(range(len(tasks)))
        by_index = {r.index: r for r in streamed}
        for result in expected.results:
            assert canonical(by_index[result.index].explanation) == (
                canonical(result.explanation)
            )

    def test_stream_is_incremental(self):
        """The iterator hands back a result before the batch is done."""
        graph = small_graph()
        tasks = [small_task() for _ in range(5)]
        with ExplanationSession(graph) as session:
            iterator = session.stream(tasks)
            first = next(iterator)
            assert first.index == 0
            rest = list(iterator)
        assert len(rest) == len(tasks) - 1

    def test_stream_reuses_warm_pool(self):
        graph = small_graph()
        tasks = [small_task() for _ in range(6)]
        with ExplanationSession(
            graph, parallel=ParallelConfig(backend="processes", workers=2)
        ) as session:
            list(session.stream(tasks))
            list(session.stream(tasks))
            assert session.stats.pool_starts == 1
            assert session.stats.exports == 1


class TestRegistry:
    def test_builtins_present(self):
        names = available_methods()
        for name in METHOD_NAMES:
            assert name in names

    def test_custom_method_routes_through_session(self, test_bench):
        class EchoSummarizer:
            def __init__(self, graph):
                self.graph = graph

            def summarize(self, task):
                from repro.core.explanation import SubgraphExplanation

                subgraph = KnowledgeGraph()
                for terminal in task.terminals:
                    subgraph.add_node(terminal)
                return SubgraphExplanation(
                    subgraph=subgraph, task=task, method="Echo"
                )

        register_method(
            MethodSpec(
                name="echo",
                legacy_name="Echo",
                builder=lambda graph, config, cache: EchoSummarizer(graph),
                uses_traversal=False,
            )
        )
        try:
            task = next(
                iter(
                    test_bench.tasks(
                        Scenario.USER_CENTRIC, "PGPR", 4
                    ).values()
                )
            )
            with ExplanationSession(test_bench.graph) as session:
                got = session.explain(
                    SummaryRequest(task=task, method="echo")
                )
                assert sorted(got.subgraph.nodes()) == sorted(
                    set(task.terminals)
                )
                # Runtime registrations are not process-safe: an
                # explicit processes backend demotes to local with a
                # warning instead of shipping an unpicklable builder.
                with ExplanationSession(
                    test_bench.graph,
                    parallel=ParallelConfig(backend="processes"),
                ) as proc_session:
                    with pytest.warns(
                        RuntimeWarning, match="process-safe"
                    ):
                        report = proc_session.run(
                            [SummaryRequest(task=task, method="echo")]
                        )
                    assert report.parallel == "serial"
        finally:
            unregister_method("echo")
        with pytest.raises(ValueError, match="unknown method"):
            method_spec("echo")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_method(MethodSpec(name="st", legacy_name="ST"))

    def test_unknown_method_fails_at_resolution(self):
        with ExplanationSession(small_graph()) as session:
            with pytest.raises(ValueError, match="unknown method"):
                session.explain(
                    SummaryRequest(task=small_task(), method="nope")
                )


class TestConfigs:
    def test_engine_config_validates(self):
        with pytest.raises(ValueError, match="unknown engine"):
            EngineConfig(engine="gpu")

    def test_cache_config_validates(self):
        with pytest.raises(ValueError, match="closure_size"):
            CacheConfig(closure_size=0)

    def test_parallel_config_validates(self):
        with pytest.raises(ValueError, match="parallel backend"):
            ParallelConfig(backend="gpu")
        with pytest.raises(ValueError, match="workers"):
            ParallelConfig(workers=-1)
        with pytest.raises(ValueError, match="chunk_size"):
            ParallelConfig(chunk_size=0)

    def test_unknown_override_is_rejected(self):
        with ExplanationSession(small_graph()) as session:
            with pytest.raises(ValueError, match="unknown engine override"):
                session.explain(
                    SummaryRequest(
                        task=small_task(), overrides={"lambda": 2.0}
                    )
                )


class TestDeprecatedShim:
    def test_batch_summarizer_warns_and_matches_session(self, test_bench):
        from repro.core.batch import BatchSummarizer

        tasks = list(
            test_bench.tasks(Scenario.USER_CENTRIC, "PGPR", 4).values()
        )
        with pytest.warns(DeprecationWarning, match="BatchSummarizer"):
            shim = BatchSummarizer(test_bench.graph, method="ST")
        legacy = shim.run(tasks)
        with ExplanationSession(test_bench.graph) as session:
            fresh = session.run(tasks)
        for a, b in zip(legacy.results, fresh.results):
            assert canonical(a.explanation) == canonical(b.explanation)

    def test_session_construction_does_not_warn(self, test_bench):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with ExplanationSession(test_bench.graph) as session:
                session.explain(
                    next(
                        iter(
                            test_bench.tasks(
                                Scenario.USER_CENTRIC, "PGPR", 4
                            ).values()
                        )
                    )
                )


class TestChunkedTimeoutWarning:
    """Satellite of the closure-store PR: the chunked scheduler cannot
    enforce per-task deadlines (no task leases), so a session armed
    with both must say so at construction, not silently ignore the
    knob."""

    def test_chunked_plus_timeout_warns_at_construction(self):
        from repro.api import ResilienceConfig, SchedulerConfig

        with pytest.warns(
            RuntimeWarning, match="ignored by the chunked scheduler"
        ):
            session = ExplanationSession(
                small_graph(),
                scheduler=SchedulerConfig(mode="chunked"),
                resilience=ResilienceConfig(task_timeout_seconds=1.0),
            )
        session.close()

    def test_quiet_without_the_conflicting_pair(self):
        from repro.api import ResilienceConfig, SchedulerConfig

        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            # Chunked without a deadline: fine.
            ExplanationSession(
                small_graph(), scheduler=SchedulerConfig(mode="chunked")
            ).close()
            # Deadline under work-stealing: enforced, hence quiet.
            ExplanationSession(
                small_graph(),
                resilience=ResilienceConfig(task_timeout_seconds=1.0),
            ).close()


class TestPluginHandshake:
    """Runtime-registered methods become process-safe when their
    ``plugin_module`` is listed in ``ParallelConfig.plugin_modules``:
    pool workers import the module at init, re-creating the
    registration inside the fresh interpreter."""

    PLUGIN_SOURCE = (
        "from repro.api import MethodSpec, register_method\n"
        "\n"
        "register_method(\n"
        "    MethodSpec(\n"
        "        name='plugin-st',\n"
        "        legacy_name='ST',\n"
        "        uses_closure_cache=True,\n"
        "        plugin_module='st_plugin_mod',\n"
        "    ),\n"
        "    replace=True,\n"
        ")\n"
    )

    def test_listed_plugin_runs_on_processes(
        self, test_bench, tmp_path, monkeypatch
    ):
        import importlib
        import sys

        (tmp_path / "st_plugin_mod.py").write_text(self.PLUGIN_SOURCE)
        monkeypatch.syspath_prepend(str(tmp_path))
        importlib.import_module("st_plugin_mod")
        tasks = list(
            test_bench.tasks(Scenario.USER_CENTRIC, "PGPR", 4).values()
        )[:3]
        requests = [
            SummaryRequest(task=task, method="plugin-st")
            for task in tasks
        ]
        try:
            with ExplanationSession(test_bench.graph) as control:
                expected = [
                    canonical(r.explanation)
                    for r in control.run(tasks).results
                ]
            with warnings.catch_warnings():
                warnings.simplefilter("error", RuntimeWarning)
                with ExplanationSession(
                    test_bench.graph,
                    parallel=ParallelConfig(
                        backend="processes",
                        workers=2,
                        plugin_modules=("st_plugin_mod",),
                    ),
                ) as session:
                    report = session.run(requests)
            assert report.parallel == "processes"
            got = [canonical(r.explanation) for r in report.results]
            assert got == expected
        finally:
            unregister_method("plugin-st")
            sys.modules.pop("st_plugin_mod", None)

    def test_unlisted_plugin_still_demotes(
        self, test_bench, tmp_path, monkeypatch
    ):
        import importlib
        import sys

        (tmp_path / "st_plugin_mod.py").write_text(self.PLUGIN_SOURCE)
        monkeypatch.syspath_prepend(str(tmp_path))
        importlib.import_module("st_plugin_mod")
        task = next(
            iter(
                test_bench.tasks(Scenario.USER_CENTRIC, "PGPR", 4).values()
            )
        )
        try:
            with ExplanationSession(
                test_bench.graph,
                parallel=ParallelConfig(backend="processes", workers=2),
            ) as session:
                with pytest.warns(RuntimeWarning, match="process-safe"):
                    report = session.run(
                        [SummaryRequest(task=task, method="plugin-st")]
                    )
                assert report.parallel in ("serial", "threads")
        finally:
            unregister_method("plugin-st")
            sys.modules.pop("st_plugin_mod", None)
