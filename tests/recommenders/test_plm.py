"""PLM simulator: language-model decoding, including hallucination."""

import pytest

from repro.graph.types import NodeType
from repro.recommenders.base import MAX_HOPS
from repro.recommenders.plm import PLMRecommender


@pytest.fixture(scope="module")
def plm(small_kg, small_dataset, fitted_mf):
    return PLMRecommender(mf=fitted_mf, seed=17).fit(
        small_kg, small_dataset.ratings
    )


class TestPLMContract:
    def test_returns_recommendations(self, plm):
        assert len(plm.recommend("u:0", 5)) == 5

    def test_paths_end_at_items_within_budget(self, plm):
        for rec in plm.recommend("u:1", 8):
            assert NodeType.of(rec.path.nodes[-1]) is NodeType.ITEM
            assert 2 <= rec.path.num_hops <= MAX_HOPS

    def test_hallucination_possible(self, small_kg, small_dataset, fitted_mf):
        """With a high hallucination rate some emitted hops must not be
        real KG edges — PLM's defining behaviour."""
        plm = PLMRecommender(
            mf=fitted_mf, hallucination_rate=0.9, seed=3
        ).fit(small_kg, small_dataset.ratings)
        invalid = 0
        for user in ("u:0", "u:1", "u:2", "u:3"):
            for rec in plm.recommend(user, 8):
                if not rec.path.is_valid_in(small_kg):
                    invalid += 1
        assert invalid > 0

    def test_zero_hallucination_faithful(self, small_kg, small_dataset, fitted_mf):
        plm = PLMRecommender(
            mf=fitted_mf, hallucination_rate=0.0, seed=3
        ).fit(small_kg, small_dataset.ratings)
        for rec in plm.recommend("u:0", 6):
            # Bigram corpus only contains real edges, so all hops exist.
            assert rec.path.is_valid_in(small_kg)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            PLMRecommender(hallucination_rate=1.5)

    def test_no_rated_items(self, plm, small_dataset):
        rated = set(small_dataset.ratings.user_items(2))
        for rec in plm.recommend("u:2", 6):
            assert int(rec.item.split(":")[1]) not in rated

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PLMRecommender().recommend("u:0", 3)
