"""Matrix factorization relevance model."""

import numpy as np
import pytest

from repro.data.ratings import RatingMatrix
from repro.recommenders.mf import MatrixFactorizationModel


@pytest.fixture
def block_ratings() -> RatingMatrix:
    """Two taste clusters: users 0-2 love items 0-2, users 3-5 love 3-5."""
    records = []
    t = 0.0
    for user in range(6):
        for item in range(6):
            same_block = (user < 3) == (item < 3)
            if (user + item) % 2 == 0:  # hold some pairs out
                records.append(
                    (user, item, 5.0 if same_block else 1.0, t)
                )
                t += 1.0
    return RatingMatrix.from_records(6, 6, records)


class TestFitting:
    def test_predictions_approach_training_data(self, block_ratings):
        model = MatrixFactorizationModel(
            num_factors=4, num_iterations=20, seed=0
        ).fit(block_ratings)
        assert model.rmse() < 1.0

    def test_block_structure_recovered(self, block_ratings):
        model = MatrixFactorizationModel(
            num_factors=4, num_iterations=20, seed=0
        ).fit(block_ratings)
        # Held-out same-block pair should outscore held-out cross-block.
        assert model.predict(0, 2) > model.predict(0, 5)

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            MatrixFactorizationModel().predict(0, 0)

    def test_empty_matrix_fits(self):
        empty = RatingMatrix.from_records(2, 2, [])
        model = MatrixFactorizationModel().fit(empty)
        assert model.global_mean == 0.0

    def test_invalid_factors_rejected(self):
        with pytest.raises(ValueError):
            MatrixFactorizationModel(num_factors=0)

    def test_deterministic_for_seed(self, block_ratings):
        a = MatrixFactorizationModel(seed=7).fit(block_ratings)
        b = MatrixFactorizationModel(seed=7).fit(block_ratings)
        assert np.allclose(a.user_factors, b.user_factors)


class TestScoring:
    def test_score_items_matches_predict(self, block_ratings):
        model = MatrixFactorizationModel(num_iterations=5, seed=1).fit(
            block_ratings
        )
        scores = model.score_items(0)
        for item in range(6):
            assert scores[item] == pytest.approx(model.predict(0, item))

    def test_top_unrated_excludes_rated(self, block_ratings):
        model = MatrixFactorizationModel(num_iterations=5, seed=1).fit(
            block_ratings
        )
        rated = set(block_ratings.user_items(0))
        for item, _score in model.top_unrated_items(0, 3):
            assert item not in rated

    def test_top_unrated_sorted_descending(self, block_ratings):
        model = MatrixFactorizationModel(num_iterations=5, seed=1).fit(
            block_ratings
        )
        picks = model.top_unrated_items(0, 3)
        scores = [s for _, s in picks]
        assert scores == sorted(scores, reverse=True)

    def test_top_unrated_respects_k(self, block_ratings):
        model = MatrixFactorizationModel(num_iterations=5, seed=1).fit(
            block_ratings
        )
        assert len(model.top_unrated_items(0, 2)) == 2
