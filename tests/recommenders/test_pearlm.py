"""PEARLM simulator: the faithfulness constraint."""

import pytest

from repro.recommenders.pearlm import PEARLMRecommender


@pytest.fixture(scope="module")
def pearlm(small_kg, small_dataset, fitted_mf):
    return PEARLMRecommender(mf=fitted_mf, seed=19).fit(
        small_kg, small_dataset.ratings
    )


class TestPEARLMContract:
    def test_every_path_is_faithful(self, pearlm, small_kg):
        """The whole point of PEARLM: no hallucinated hops, ever."""
        for user in ("u:0", "u:1", "u:2", "u:3", "u:4"):
            for rec in pearlm.recommend(user, 8):
                assert rec.path.is_valid_in(small_kg)

    def test_returns_recommendations(self, pearlm):
        assert len(pearlm.recommend("u:0", 5)) == 5

    def test_hallucination_rate_forced_to_zero(self, pearlm):
        assert pearlm.hallucination_rate == 0.0

    def test_name(self, pearlm):
        assert pearlm.name == "PEARLM"

    def test_no_rated_items(self, pearlm, small_dataset):
        rated = set(small_dataset.ratings.user_items(1))
        for rec in pearlm.recommend("u:1", 6):
            assert int(rec.item.split(":")[1]) not in rated
