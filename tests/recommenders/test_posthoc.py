"""Post-hoc path adapter for path-less recommenders."""

import pytest

from repro.recommenders.base import MAX_HOPS
from repro.recommenders.posthoc import PostHocPathRecommender


@pytest.fixture(scope="module")
def posthoc(small_kg, small_dataset, fitted_mf):
    return PostHocPathRecommender(mf=fitted_mf).fit(
        small_kg, small_dataset.ratings
    )


class TestPostHoc:
    def test_paths_are_shortest_in_hops(self, posthoc, small_kg):
        from repro.graph.shortest_paths import bfs_shortest_path

        for rec in posthoc.recommend("u:0", 5):
            shortest = bfs_shortest_path(small_kg, rec.user, rec.item)
            assert rec.path.num_hops == len(shortest) - 1

    def test_hop_budget(self, posthoc):
        for rec in posthoc.recommend("u:1", 8):
            assert rec.path.num_hops <= MAX_HOPS

    def test_faithful(self, posthoc, small_kg):
        for rec in posthoc.recommend("u:2", 8):
            assert rec.path.is_valid_in(small_kg)

    def test_ranked_by_mf_score(self, posthoc):
        scores = [r.score for r in posthoc.recommend("u:3", 8)]
        assert scores == sorted(scores, reverse=True)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PostHocPathRecommender().recommend("u:0", 3)

    def test_unknown_user_raises(self, posthoc):
        with pytest.raises(KeyError):
            posthoc.recommend("u:12345678", 3)
