"""CAFE simulator: meta-path regularity."""

import pytest

from repro.graph.types import NodeType
from repro.recommenders.cafe import (
    DEFAULT_PATTERNS,
    USER_ITEM_ENTITY_ITEM,
    USER_ITEM_USER_ITEM,
    CAFERecommender,
    MetaPath,
)


@pytest.fixture(scope="module")
def cafe(small_kg, small_dataset, fitted_mf):
    return CAFERecommender(mf=fitted_mf).fit(small_kg, small_dataset.ratings)


class TestMetaPath:
    def test_str(self):
        assert str(USER_ITEM_ENTITY_ITEM) == "user-item-external-item"

    def test_pattern_must_start_at_user(self):
        bad = MetaPath((NodeType.ITEM, NodeType.ITEM))
        with pytest.raises(ValueError):
            CAFERecommender(patterns=(bad,))

    def test_pattern_must_end_at_item(self):
        bad = MetaPath((NodeType.USER, NodeType.ITEM, NodeType.USER))
        with pytest.raises(ValueError):
            CAFERecommender(patterns=(bad,))

    def test_empty_patterns_rejected(self):
        with pytest.raises(ValueError):
            CAFERecommender(patterns=())


class TestCAFEContract:
    def test_paths_follow_some_pattern(self, cafe):
        allowed = {p.node_types for p in DEFAULT_PATTERNS}
        for rec in cafe.recommend("u:0", 8):
            assert rec.path.node_types() in allowed

    def test_returns_recommendations(self, cafe):
        assert len(cafe.recommend("u:1", 5)) == 5

    def test_paths_faithful(self, cafe, small_kg):
        for rec in cafe.recommend("u:2", 6):
            assert rec.path.is_valid_in(small_kg)

    def test_no_rated_items(self, cafe, small_dataset):
        rated = set(small_dataset.ratings.user_items(3))
        for rec in cafe.recommend("u:3", 6):
            assert int(rec.item.split(":")[1]) not in rated

    def test_scores_descending(self, cafe):
        scores = [r.score for r in cafe.recommend("u:4", 8)]
        assert scores == sorted(scores, reverse=True)

    def test_single_pattern_restriction(self, small_kg, small_dataset, fitted_mf):
        only_entity = CAFERecommender(
            patterns=(USER_ITEM_ENTITY_ITEM,), mf=fitted_mf
        ).fit(small_kg, small_dataset.ratings)
        for rec in only_entity.recommend("u:5", 5):
            assert rec.path.node_types() == USER_ITEM_ENTITY_ITEM.node_types

    def test_coarse_profile_is_distribution(self, cafe):
        profile = cafe._coarse_pattern_profile("u:0")
        assert pytest.approx(sum(profile.values())) == 1.0
        assert all(v >= 0 for v in profile.values())

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            CAFERecommender().recommend("u:0", 3)
