"""PGPR simulator contract."""

import pytest

from repro.graph.types import NodeType
from repro.recommenders.base import MAX_HOPS
from repro.recommenders.pgpr import PGPRRecommender


@pytest.fixture(scope="module")
def pgpr(small_kg, small_dataset, fitted_mf):
    return PGPRRecommender(mf=fitted_mf).fit(small_kg, small_dataset.ratings)


class TestPGPRContract:
    def test_returns_k_recommendations(self, pgpr):
        recs = pgpr.recommend("u:0", 5)
        assert len(recs) == 5

    def test_paths_start_at_user_end_at_item(self, pgpr):
        for rec in pgpr.recommend("u:1", 5):
            assert rec.path.nodes[0] == "u:1"
            assert NodeType.of(rec.path.nodes[-1]) is NodeType.ITEM

    def test_paths_within_hop_budget(self, pgpr):
        for rec in pgpr.recommend("u:2", 8):
            assert rec.path.num_hops <= MAX_HOPS

    def test_paths_are_faithful_to_graph(self, pgpr, small_kg):
        for rec in pgpr.recommend("u:3", 8):
            assert rec.path.is_valid_in(small_kg)

    def test_no_rated_items_recommended(self, pgpr, small_dataset):
        rated = set(small_dataset.ratings.user_items(4))
        for rec in pgpr.recommend("u:4", 8):
            assert int(rec.item.split(":")[1]) not in rated

    def test_items_unique(self, pgpr):
        recs = pgpr.recommend("u:5", 10)
        items = [r.item for r in recs]
        assert len(set(items)) == len(items)

    def test_scores_descending(self, pgpr):
        scores = [r.score for r in pgpr.recommend("u:6", 10)]
        assert scores == sorted(scores, reverse=True)

    def test_unknown_user_raises(self, pgpr):
        with pytest.raises(KeyError):
            pgpr.recommend("u:999999", 5)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PGPRRecommender().recommend("u:0", 5)

    def test_deterministic(self, small_kg, small_dataset, fitted_mf):
        a = PGPRRecommender(mf=fitted_mf).fit(small_kg, small_dataset.ratings)
        b = PGPRRecommender(mf=fitted_mf).fit(small_kg, small_dataset.ratings)
        assert [r.item for r in a.recommend("u:7", 6)] == [
            r.item for r in b.recommend("u:7", 6)
        ]

    def test_recommend_many(self, pgpr):
        result = pgpr.recommend_many(["u:0", "u:1"], 3)
        assert set(result) == {"u:0", "u:1"}
        assert all(len(v) <= 3 for v in result.values())
