"""Recommender-suite fixtures: a fitted MF model shared by all simulators."""

import pytest

from repro.recommenders.mf import MatrixFactorizationModel


@pytest.fixture(scope="session")
def fitted_mf(small_dataset) -> MatrixFactorizationModel:
    return MatrixFactorizationModel(num_iterations=5, seed=2).fit(
        small_dataset.ratings
    )
