"""Recommender registry."""

import pytest

from repro.recommenders.registry import available_recommenders, make_recommender


class TestRegistry:
    def test_all_paper_methods_available(self):
        names = available_recommenders()
        for expected in ("PGPR", "CAFE", "PLM", "PEARLM"):
            assert expected in names

    def test_case_insensitive(self):
        assert make_recommender("pgpr").name == "PGPR"

    def test_kwargs_forwarded(self):
        rec = make_recommender("PGPR", beam_width=7)
        assert rec.beam_width == 7

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_recommender("SVD++")

    def test_posthoc_adapter_registered(self):
        assert make_recommender("MF+posthoc").name == "MF+posthoc"
