"""Recommendation records and list slicing."""

import pytest

from repro.graph.paths import Path
from repro.recommenders.base import (
    Recommendation,
    RecommendationList,
    invert_recommendations,
)


def rec(user: str, item: str, score: float = 1.0) -> Recommendation:
    return Recommendation(
        user=user,
        item=item,
        score=score,
        path=Path(nodes=(user, item)),
    )


class TestRecommendation:
    def test_path_must_start_at_user(self):
        with pytest.raises(ValueError):
            Recommendation(
                user="u:0",
                item="i:0",
                score=1.0,
                path=Path(nodes=("u:1", "i:0")),
            )

    def test_path_must_end_at_item(self):
        with pytest.raises(ValueError):
            Recommendation(
                user="u:0",
                item="i:0",
                score=1.0,
                path=Path(nodes=("u:0", "i:1")),
            )


class TestRecommendationList:
    @pytest.fixture
    def rec_list(self):
        return RecommendationList(
            user="u:0",
            recommendations=[rec("u:0", f"i:{i}", 10.0 - i) for i in range(5)],
        )

    def test_top_slices(self, rec_list):
        assert [r.item for r in rec_list.top(2)] == ["i:0", "i:1"]

    def test_top_beyond_length(self, rec_list):
        assert len(rec_list.top(99)) == 5

    def test_negative_k_rejected(self, rec_list):
        with pytest.raises(ValueError):
            rec_list.top(-1)

    def test_items_and_paths(self, rec_list):
        assert rec_list.items(3) == ["i:0", "i:1", "i:2"]
        assert len(rec_list.paths(3)) == 3
        assert rec_list.items() == [f"i:{i}" for i in range(5)]

    def test_len_and_iter(self, rec_list):
        assert len(rec_list) == 5
        assert sum(1 for _ in rec_list) == 5


class TestInversion:
    def test_groups_by_item_with_k_cutoff(self):
        per_user = {
            "u:0": RecommendationList(
                "u:0", [rec("u:0", "i:0"), rec("u:0", "i:1")]
            ),
            "u:1": RecommendationList(
                "u:1", [rec("u:1", "i:1"), rec("u:1", "i:0")]
            ),
        }
        by_item = invert_recommendations(per_user, k=1)
        assert {r.user for r in by_item["i:0"]} == {"u:0"}
        assert {r.user for r in by_item["i:1"]} == {"u:1"}
        by_item_full = invert_recommendations(per_user, k=2)
        assert {r.user for r in by_item_full["i:0"]} == {"u:0", "u:1"}
