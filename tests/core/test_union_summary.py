"""Union-of-paths baseline summarizer."""

from repro.core.scenarios import Scenario, SummaryTask
from repro.core.union_summary import UnionSummarizer
from repro.graph.paths import Path


class TestUnionSummarizer:
    def test_union_contains_every_path_edge(self, core_graph, toy_task):
        summary = UnionSummarizer(core_graph).summarize(toy_task)
        for path in toy_task.paths:
            for u, v in path.edges():
                assert summary.subgraph.has_edge(u, v)

    def test_shared_edges_collapse(self, core_graph):
        paths = (
            Path(nodes=("u:0", "i:0", "e:genre:0", "i:1")),
            Path(nodes=("u:0", "i:0", "e:genre:0", "i:1")),
        )
        task = SummaryTask(
            scenario=Scenario.USER_CENTRIC,
            terminals=("u:0", "i:1"),
            paths=paths,
            anchors=("i:1",),
            focus=("u:0",),
        )
        summary = UnionSummarizer(core_graph).summarize(task)
        assert summary.subgraph.num_edges == 3

    def test_hallucinated_edges_kept_with_zero_weight(self, core_graph):
        paths = (Path(nodes=("u:0", "i:1")),)  # edge absent from graph
        task = SummaryTask(
            scenario=Scenario.USER_CENTRIC,
            terminals=("u:0", "i:1"),
            paths=paths,
            anchors=("i:1",),
            focus=("u:0",),
        )
        summary = UnionSummarizer(core_graph).summarize(task)
        assert summary.subgraph.has_edge("u:0", "i:1")
        assert summary.subgraph.weight("u:0", "i:1") == 0.0

    def test_weights_copied_from_graph(self, core_graph, toy_task):
        summary = UnionSummarizer(core_graph).summarize(toy_task)
        assert summary.subgraph.weight("u:0", "i:0") == 5.0

    def test_method_label(self, core_graph, toy_task):
        assert UnionSummarizer(core_graph).summarize(toy_task).method == "Union"
