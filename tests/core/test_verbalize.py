"""Natural-language rendering."""

from repro.core.steiner_summary import SteinerSummarizer
from repro.core.verbalize import (
    node_type_label,
    verbalize_path,
    verbalize_summary,
)
from repro.graph.paths import Path


class TestVerbalizePath:
    def test_direct_connection(self, core_graph):
        sentence = verbalize_path(Path(nodes=("u:0", "i:0")), core_graph)
        assert sentence == "u:0 is directly connected to i:0."

    def test_through_intermediates(self, core_graph):
        sentence = verbalize_path(
            Path(nodes=("u:0", "i:0", "e:genre:0", "i:1")), core_graph
        )
        assert "is connected to" in sentence
        assert "through" in sentence
        assert "e:genre:0" in sentence

    def test_names_used_when_available(self, core_graph):
        core_graph.set_name("u:0", "Alice")
        core_graph.set_name("i:1", "Casablanca")
        sentence = verbalize_path(
            Path(nodes=("u:0", "i:0", "e:genre:0", "i:1")), core_graph
        )
        assert sentence.startswith("Alice")
        assert "Casablanca" in sentence

    def test_without_graph_uses_ids(self):
        sentence = verbalize_path(Path(nodes=("u:0", "i:0")))
        assert "u:0" in sentence


class TestVerbalizeSummary:
    def test_headline_mentions_focus_and_anchors(self, core_graph, toy_task):
        summary = SteinerSummarizer(core_graph, lam=1.0).summarize(toy_task)
        sentence = verbalize_summary(summary, core_graph)
        assert sentence.startswith("u:0 is connected to")
        assert "i:1" in sentence
        assert "i:3" in sentence

    def test_routes_included_on_request(self, core_graph, toy_task):
        summary = SteinerSummarizer(core_graph, lam=1.0).summarize(toy_task)
        with_routes = verbalize_summary(
            summary, core_graph, include_routes=True
        )
        without = verbalize_summary(summary, core_graph)
        assert len(with_routes) >= len(without)

    def test_empty_summary_handled(self, core_graph, toy_task):
        from repro.core.explanation import SubgraphExplanation
        from repro.graph.knowledge_graph import KnowledgeGraph

        empty = SubgraphExplanation(
            subgraph=KnowledgeGraph(), task=toy_task, method="ST"
        )
        assert verbalize_summary(empty) == "The summary is empty."


class TestNodeTypeLabel:
    def test_labels(self):
        assert node_type_label("u:0") == "user"
        assert node_type_label("i:0") == "item"
        assert node_type_label("e:g:0") == "external"
