"""The four scenario task builders."""

import pytest

from repro.core.scenarios import (
    Scenario,
    SummaryTask,
    item_centric_task,
    item_group_task,
    user_centric_task,
    user_group_task,
)
from repro.graph.paths import Path
from repro.recommenders.base import Recommendation, RecommendationList


def rec(user, item):
    return Recommendation(
        user=user, item=item, score=1.0, path=Path(nodes=(user, item))
    )


class TestSummaryTask:
    def test_anchor_must_be_terminal(self):
        with pytest.raises(ValueError):
            SummaryTask(
                scenario=Scenario.USER_CENTRIC,
                terminals=("u:0",),
                paths=(),
                anchors=("i:0",),
                focus=("u:0",),
            )

    def test_focus_must_be_terminal(self):
        with pytest.raises(ValueError):
            SummaryTask(
                scenario=Scenario.USER_CENTRIC,
                terminals=("i:0",),
                paths=(),
                anchors=("i:0",),
                focus=("u:0",),
            )

    def test_empty_terminals_rejected(self):
        with pytest.raises(ValueError):
            SummaryTask(
                scenario=Scenario.USER_CENTRIC,
                terminals=(),
                paths=(),
                anchors=(),
                focus=(),
            )

    def test_is_group(self):
        assert Scenario.USER_GROUP.is_group
        assert not Scenario.USER_CENTRIC.is_group


class TestUserCentric:
    def test_terminals_are_user_plus_items(self, toy_recommendations):
        task = user_centric_task(toy_recommendations, 2)
        assert task.terminals == ("u:0", "i:1", "i:3")
        assert task.anchors == ("i:1", "i:3")
        assert task.focus == ("u:0",)
        assert len(task.paths) == 2

    def test_k_truncates(self, toy_recommendations):
        task = user_centric_task(toy_recommendations, 1)
        assert task.terminals == ("u:0", "i:1")
        assert len(task.paths) == 1

    def test_empty_recommendations_rejected(self):
        empty = RecommendationList(user="u:0")
        with pytest.raises(ValueError):
            user_centric_task(empty, 3)


class TestItemCentric:
    def test_terminals_are_item_plus_users(self):
        recs = [rec("u:0", "i:5"), rec("u:1", "i:5"), rec("u:2", "i:9")]
        task = item_centric_task("i:5", recs)
        assert task.terminals == ("i:5", "u:0", "u:1")
        assert task.anchors == ("u:0", "u:1")
        assert task.focus == ("i:5",)
        assert len(task.paths) == 2

    def test_unrecommended_item_rejected(self):
        with pytest.raises(ValueError):
            item_centric_task("i:5", [rec("u:0", "i:1")])


class TestUserGroup:
    def test_terminals_union(self):
        per_user = {
            "u:0": RecommendationList("u:0", [rec("u:0", "i:0")]),
            "u:1": RecommendationList("u:1", [rec("u:1", "i:1")]),
        }
        task = user_group_task(["u:0", "u:1"], per_user, k=1)
        assert set(task.terminals) == {"u:0", "u:1", "i:0", "i:1"}
        assert set(task.focus) == {"u:0", "u:1"}
        assert len(task.paths) == 2

    def test_missing_member_raises(self):
        with pytest.raises(KeyError):
            user_group_task(["u:0"], {}, k=1)

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            user_group_task([], {}, k=1)

    def test_shared_items_deduplicated(self):
        per_user = {
            "u:0": RecommendationList("u:0", [rec("u:0", "i:7")]),
            "u:1": RecommendationList("u:1", [rec("u:1", "i:7")]),
        }
        task = user_group_task(["u:0", "u:1"], per_user, k=1)
        assert task.terminals.count("i:7") == 1
        assert len(task.paths) == 2


class TestItemGroup:
    def test_terminals_union(self):
        by_item = {
            "i:0": [rec("u:0", "i:0"), rec("u:1", "i:0")],
            "i:1": [rec("u:1", "i:1")],
        }
        task = item_group_task(["i:0", "i:1"], by_item)
        assert set(task.terminals) == {"i:0", "i:1", "u:0", "u:1"}
        assert set(task.anchors) == {"u:0", "u:1"}
        assert set(task.focus) == {"i:0", "i:1"}
        assert len(task.paths) == 3

    def test_items_without_recommendations_skipped(self):
        by_item = {"i:0": [rec("u:0", "i:0")]}
        task = item_group_task(["i:0", "i:9"], by_item)
        assert "i:9" not in task.terminals

    def test_fully_empty_group_rejected(self):
        with pytest.raises(ValueError):
            item_group_task(["i:9"], {})
