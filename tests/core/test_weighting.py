"""Eq. (1) weighting and the cost transform."""

import pytest

from repro.core.weighting import ExplanationWeighting


class TestBoostedWeight:
    def test_edge_on_path_boosted(self, core_graph, toy_task):
        weighting = ExplanationWeighting(core_graph, toy_task, lam=1.0)
        stored = core_graph.weight("u:0", "i:0")
        boosted = weighting.boosted_weight("u:0", "i:0", stored)
        # freq = 1, |S| = 2 anchors: w * (1 + 1 * 1/2)
        assert boosted == pytest.approx(stored * 1.5)

    def test_edge_off_path_unboosted(self, core_graph, toy_task):
        weighting = ExplanationWeighting(core_graph, toy_task, lam=1.0)
        stored = core_graph.weight("u:1", "i:1")
        assert weighting.boosted_weight("u:1", "i:1", stored) == stored

    def test_lambda_zero_nullifies(self, core_graph, toy_task):
        weighting = ExplanationWeighting(core_graph, toy_task, lam=0.0)
        stored = core_graph.weight("u:0", "i:0")
        assert weighting.boosted_weight("u:0", "i:0", stored) == stored
        assert weighting.boost("u:0", "i:0", stored) == 0.0

    def test_knowledge_edges_never_boosted(self, core_graph, toy_task):
        # w_A = 0 kills the multiplicative boost, per the paper.
        weighting = ExplanationWeighting(core_graph, toy_task, lam=100.0)
        assert weighting.boost("i:0", "e:genre:0", 0.0) == 0.0

    def test_negative_lambda_rejected(self, core_graph, toy_task):
        with pytest.raises(ValueError):
            ExplanationWeighting(core_graph, toy_task, lam=-1.0)

    def test_weight_influence_bounds(self, core_graph, toy_task):
        with pytest.raises(ValueError):
            ExplanationWeighting(core_graph, toy_task, weight_influence=1.0)


class TestCost:
    def test_costs_positive_and_bounded(self, core_graph, toy_task):
        weighting = ExplanationWeighting(
            core_graph, toy_task, lam=100.0, weight_influence=0.7
        )
        for edge in core_graph.edges():
            cost = weighting.cost(edge.source, edge.target, edge.weight)
            assert 0.3 < cost <= 1.0

    def test_path_edges_cheaper(self, core_graph, toy_task):
        weighting = ExplanationWeighting(core_graph, toy_task, lam=10.0)
        on_path = weighting.cost(
            "u:0", "i:0", core_graph.weight("u:0", "i:0")
        )
        off_path = weighting.cost(
            "u:1", "i:1", core_graph.weight("u:1", "i:1")
        )
        assert on_path < off_path == 1.0

    def test_lambda_monotone(self, core_graph, toy_task):
        """Higher λ -> cheaper path edges (stronger path adherence)."""
        stored = core_graph.weight("u:0", "i:0")
        costs = [
            ExplanationWeighting(core_graph, toy_task, lam=lam).cost(
                "u:0", "i:0", stored
            )
            for lam in (0.01, 1.0, 100.0)
        ]
        assert costs[0] > costs[1] > costs[2]

    def test_heavier_path_edges_cheaper(self, core_graph, toy_task):
        """Within the path set, a 5-star edge outranks a 3-star edge."""
        weighting = ExplanationWeighting(core_graph, toy_task, lam=1.0)
        heavy = weighting.cost("u:0", "i:0", 5.0)
        light = weighting.cost("u:0", "i:2", 3.0)
        assert heavy < light

    def test_lambda_zero_uniform_costs(self, core_graph, toy_task):
        weighting = ExplanationWeighting(core_graph, toy_task, lam=0.0)
        costs = {
            weighting.cost(e.source, e.target, e.weight)
            for e in core_graph.edges()
        }
        assert costs == {1.0}
