"""Core-suite fixtures: a small graph with two recommendable items and
canned recommendation lists / tasks over it."""

import pytest

from repro.core.scenarios import user_centric_task
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.paths import Path
from repro.recommenders.base import Recommendation, RecommendationList


@pytest.fixture
def core_graph() -> KnowledgeGraph:
    """Toy graph with unrated items i:1 and i:3 reachable from u:0::

        u:0 --5-- i:0 --- e:genre:0 --- i:1
        u:0 --3-- i:2 --- e:director:0 --- i:1
                                       \\-- i:3
        u:1 --4-- i:1
    """
    graph = KnowledgeGraph()
    graph.add_edge("u:0", "i:0", 5.0)
    graph.add_edge("u:0", "i:2", 3.0)
    graph.add_edge("u:1", "i:1", 4.0)
    graph.add_edge("i:0", "e:genre:0", 0.0, "genre")
    graph.add_edge("i:1", "e:genre:0", 0.0, "genre")
    graph.add_edge("i:2", "e:director:0", 0.0, "director")
    graph.add_edge("i:1", "e:director:0", 0.0, "director")
    graph.add_edge("i:3", "e:director:0", 0.0, "director")
    return graph


@pytest.fixture
def toy_recommendations() -> RecommendationList:
    """Top-2 list for u:0 over core_graph, with real explanation paths."""
    path_a = Path(nodes=("u:0", "i:0", "e:genre:0", "i:1"), score=2.0)
    path_b = Path(nodes=("u:0", "i:2", "e:director:0", "i:3"), score=1.0)
    return RecommendationList(
        user="u:0",
        recommendations=[
            Recommendation(user="u:0", item="i:1", score=2.0, path=path_a),
            Recommendation(user="u:0", item="i:3", score=1.0, path=path_b),
        ],
    )


@pytest.fixture
def toy_task(toy_recommendations):
    return user_centric_task(toy_recommendations, 2)
