"""Summarizer facade: dispatch and disconnected-terminal fallback."""

import pytest

from repro.core.scenarios import Scenario, SummaryTask
from repro.core.summarizer import Summarizer, summarize
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.paths import Path


class TestDispatch:
    def test_st(self, core_graph, toy_task):
        assert Summarizer(core_graph, "ST").summarize(toy_task).method == "ST"

    def test_pcst(self, core_graph, toy_task):
        summary = Summarizer(core_graph, "PCST").summarize(toy_task)
        assert summary.method == "PCST"

    def test_union(self, core_graph, toy_task):
        summary = Summarizer(core_graph, "Union").summarize(toy_task)
        assert summary.method == "Union"

    def test_unknown_method_rejected(self, core_graph):
        with pytest.raises(ValueError):
            Summarizer(core_graph, "MAGIC")

    def test_engine_knob_reaches_every_method(self, core_graph, toy_task):
        """engine= selects the backend for ST, ST-fast and PCST alike,
        with "csr" accepted as an alias for "frozen"; outputs agree."""
        for method in ("ST", "ST-fast", "PCST"):
            outputs = []
            for engine in ("frozen", "csr", "dict"):
                summary = Summarizer(
                    core_graph, method=method, engine=engine
                ).summarize(toy_task)
                outputs.append(
                    (
                        sorted(summary.subgraph.nodes()),
                        sorted(e.key() for e in summary.subgraph.edges()),
                    )
                )
            assert outputs[0] == outputs[1] == outputs[2]

    def test_unknown_engine_rejected(self, core_graph):
        for method in ("ST", "ST-fast", "PCST", "Union"):
            with pytest.raises(ValueError, match="unknown engine"):
                Summarizer(core_graph, method=method, engine="gpu")

    def test_one_shot_helper(self, core_graph, toy_task):
        summary = summarize(core_graph, toy_task, method="ST", lam=2.0)
        assert summary.params["lam"] == 2.0


class TestDisconnectedFallback:
    @pytest.fixture
    def split_graph(self):
        graph = KnowledgeGraph()
        graph.add_edge("u:0", "i:0", 5.0)
        graph.add_edge("i:0", "e:g:0", 0.0, "g")
        graph.add_edge("e:g:0", "i:1", 0.0, "g")
        # Disconnected island holding i:9.
        graph.add_edge("u:9", "i:9", 1.0)
        return graph

    @pytest.fixture
    def split_task(self):
        return SummaryTask(
            scenario=Scenario.USER_CENTRIC,
            terminals=("u:0", "i:1", "i:9"),
            paths=(Path(nodes=("u:0", "i:0", "e:g:0", "i:1")),),
            anchors=("i:1", "i:9"),
            focus=("u:0",),
        )

    def test_st_narrows_to_connected_component(self, split_graph, split_task):
        summary = Summarizer(split_graph, "ST").summarize(split_task)
        assert "u:0" in summary.subgraph
        assert "i:1" in summary.subgraph
        assert "i:9" not in summary.subgraph

    def test_pcst_relaxes_connectivity(self, split_graph, split_task):
        """PCST keeps the island terminal but never connects it — the
        prize-collecting relaxation in action."""
        from repro.graph.shortest_paths import bfs_shortest_path

        summary = Summarizer(split_graph, "PCST").summarize(split_task)
        assert "u:0" in summary.subgraph
        if "i:9" in summary.subgraph:
            assert bfs_shortest_path(summary.subgraph, "u:0", "i:9") is None

    def test_narrowed_task_keeps_focus(self, split_graph, split_task):
        summary = Summarizer(split_graph, "ST").summarize(split_task)
        assert summary.task.focus == ("u:0",)
        assert "i:9" not in summary.task.terminals
