"""Incremental ST summarizer: equivalence and speedup."""

import time

import pytest

from repro.core.incremental import IncrementalSteinerSummarizer
from repro.core.scenarios import user_centric_task
from repro.core.steiner_summary import SteinerSummarizer
from repro.graph.subgraph import is_tree
from repro.metrics.consistency import consistency


class TestIncrementalSummaries:
    @pytest.fixture(scope="class")
    def sweep(self, test_bench):
        per_user = test_bench.recommendations("PGPR")
        user = test_bench.eval_users[0]
        recommendations = per_user[user]
        incremental = IncrementalSteinerSummarizer(
            test_bench.graph, lam=100.0
        )
        k_max = min(5, len(recommendations))
        return (
            test_bench,
            recommendations,
            incremental.summaries_for_ks(recommendations, k_max),
        )

    def test_one_summary_per_k(self, sweep):
        _, recommendations, summaries = sweep
        assert len(summaries) == min(5, len(recommendations))
        for k, summary in enumerate(summaries, start=1):
            assert summary.task.k == k

    def test_each_summary_is_covering_tree(self, sweep):
        _, _, summaries = sweep
        for summary in summaries:
            assert is_tree(summary.subgraph)
            assert summary.terminal_coverage == 1.0

    def test_consistency_computable_over_sweep(self, sweep):
        _, _, summaries = sweep
        assert 0.0 <= consistency(summaries) <= 1.0

    def test_matches_per_k_sizes_at_saturated_lambda(self, sweep):
        """At λ=100 the cost surface is saturated, so incremental trees
        match the per-k computation in size (ties may swap edges)."""
        bench, recommendations, summaries = sweep
        per_k = SteinerSummarizer(bench.graph, lam=100.0)
        for k, summary in enumerate(summaries, start=1):
            task = user_centric_task(recommendations, k)
            exact = per_k.summarize(task)
            assert (
                abs(summary.subgraph.num_edges - exact.subgraph.num_edges)
                <= 2
            )

    def test_faster_than_naive_sweep(self, test_bench):
        per_user = test_bench.recommendations("PGPR")
        user = test_bench.eval_users[1]
        recommendations = per_user[user]
        k_max = min(5, len(recommendations))

        start = time.perf_counter()
        IncrementalSteinerSummarizer(
            test_bench.graph, lam=1.0
        ).summaries_for_ks(recommendations, k_max)
        incremental_time = time.perf_counter() - start

        start = time.perf_counter()
        summarizer = SteinerSummarizer(test_bench.graph, lam=1.0)
        for k in range(1, k_max + 1):
            summarizer.summarize(user_centric_task(recommendations, k))
        naive_time = time.perf_counter() - start
        assert incremental_time < naive_time

    def test_empty_recommendations_rejected(self, test_bench):
        from repro.recommenders.base import RecommendationList

        incremental = IncrementalSteinerSummarizer(test_bench.graph)
        with pytest.raises(ValueError):
            incremental.summaries_for_ks(
                RecommendationList(user="u:0"), 3
            )
