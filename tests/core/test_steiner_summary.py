"""ST summaries."""

import pytest

from repro.core.steiner_summary import SteinerSummarizer
from repro.graph.subgraph import is_tree


class TestSteinerSummarizer:
    def test_summary_is_tree_spanning_terminals(self, core_graph, toy_task):
        summary = SteinerSummarizer(core_graph, lam=1.0).summarize(toy_task)
        assert is_tree(summary.subgraph)
        for terminal in toy_task.terminals:
            assert terminal in summary.subgraph

    def test_smaller_than_input_paths(self, core_graph, toy_task):
        """The point of the paper: the summary beats the union in size."""
        total_path_edges = sum(len(p) for p in toy_task.paths)
        summary = SteinerSummarizer(core_graph, lam=100.0).summarize(toy_task)
        assert summary.subgraph.num_edges < total_path_edges

    def test_high_lambda_reuses_path_edges(self, core_graph, toy_task):
        summary = SteinerSummarizer(core_graph, lam=100.0).summarize(toy_task)
        path_edges = {
            key for path in toy_task.paths for key in path.edge_keys()
        }
        summary_edges = {e.key() for e in summary.subgraph.edges()}
        # At λ=100 the tree overwhelmingly reuses input-path edges.
        assert summary_edges & path_edges

    def test_lambda_zero_still_spans(self, core_graph, toy_task):
        summary = SteinerSummarizer(core_graph, lam=0.0).summarize(toy_task)
        assert is_tree(summary.subgraph)
        for terminal in toy_task.terminals:
            assert terminal in summary.subgraph

    def test_params_recorded(self, core_graph, toy_task):
        summary = SteinerSummarizer(
            core_graph, lam=2.0, weight_influence=0.5
        ).summarize(toy_task)
        assert summary.params == {
            "lam": 2.0,
            "weight_influence": 0.5,
            "algorithm": "kmb",
        }

    def test_on_real_graph(self, small_kg, test_bench):
        """Summaries on the generated KG span the requested terminals."""
        from repro.core.scenarios import user_centric_task

        per_user = test_bench.recommendations("PGPR")
        user = test_bench.eval_users[0]
        task = user_centric_task(per_user[user], 4)
        summary = SteinerSummarizer(test_bench.graph, lam=1.0).summarize(task)
        assert is_tree(summary.subgraph)
        assert summary.terminal_coverage == 1.0
