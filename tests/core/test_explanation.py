"""Explanation counting views (path sets vs subgraphs)."""

import pytest

from repro.core.explanation import PathSetExplanation, SubgraphExplanation
from repro.core.steiner_summary import SteinerSummarizer
from repro.graph.paths import Path
from repro.graph.types import NodeType


class TestPathSetExplanation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PathSetExplanation(paths=())

    def test_node_mentions_with_multiplicity(self):
        paths = (
            Path(nodes=("u:0", "i:0", "e:g:0", "i:1")),
            Path(nodes=("u:0", "i:2", "e:g:0", "i:3")),
        )
        explanation = PathSetExplanation(paths=paths)
        mentions = explanation.node_mentions()
        assert mentions["u:0"] == 2
        assert mentions["e:g:0"] == 2
        assert explanation.total_node_mentions == 8

    def test_size_counts_edge_multiplicity(self):
        paths = (
            Path(nodes=("u:0", "i:0")),
            Path(nodes=("u:0", "i:0", "e:g:0"), item="e:g:0"),
        )
        explanation = PathSetExplanation(paths=paths)
        assert explanation.size_in_edges == 3  # u-i twice + i-e once
        assert len(explanation.unique_edges()) == 2

    def test_count_nodes_of_type(self):
        explanation = PathSetExplanation(
            paths=(Path(nodes=("u:0", "i:0", "e:g:0", "i:1")),)
        )
        assert explanation.count_nodes_of_type(NodeType.ITEM) == 2
        assert explanation.count_nodes_of_type(NodeType.USER) == 1


class TestSubgraphExplanation:
    @pytest.fixture
    def summary(self, core_graph, toy_task):
        return SteinerSummarizer(core_graph, lam=1.0).summarize(toy_task)

    def test_nodes_unique(self, summary):
        mentions = summary.node_mentions()
        assert all(count == 1 for count in mentions.values())

    def test_size_is_subgraph_edges(self, summary):
        assert summary.size_in_edges == summary.subgraph.num_edges

    def test_terminal_coverage_full(self, summary):
        assert summary.terminal_coverage == 1.0
        assert summary.covered_terminals == set(summary.task.terminals)

    def test_connection_paths_reach_anchors(self, summary):
        targets = {p.nodes[-1] for p in summary.connection_paths}
        assert targets == {"i:1", "i:3"}
        for route in summary.connection_paths:
            assert route.nodes[0] == "u:0"

    def test_connection_paths_live_in_subgraph(self, summary):
        for route in summary.connection_paths:
            assert route.is_valid_in(summary.subgraph)

    def test_method_and_params_recorded(self, summary):
        assert summary.method == "ST"
        assert summary.params["lam"] == 1.0
