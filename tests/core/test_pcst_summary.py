"""PCST summaries and prize policies."""

import pytest

from repro.core.pcst_summary import PCSTSummarizer, PrizePolicy
from repro.graph.subgraph import is_forest


class TestPCSTSummarizer:
    def test_covers_terminals(self, core_graph, toy_task):
        summary = PCSTSummarizer(core_graph).summarize(toy_task)
        assert summary.terminal_coverage == 1.0
        assert is_forest(summary.subgraph)

    def test_default_policy_binary(self, core_graph, toy_task):
        summary = PCSTSummarizer(core_graph).summarize(toy_task)
        assert summary.params["prize_policy"] == "binary"

    def test_leaf_pruning_default(self, core_graph, toy_task):
        summary = PCSTSummarizer(core_graph).summarize(toy_task)
        for node in summary.subgraph.nodes():
            if summary.subgraph.degree(node) <= 1:
                assert node in toy_task.terminals

    def test_unpruned_at_least_as_large(self, core_graph, toy_task):
        pruned = PCSTSummarizer(core_graph).summarize(toy_task)
        unpruned = PCSTSummarizer(
            core_graph, prune_leaves=False
        ).summarize(toy_task)
        assert unpruned.subgraph.num_nodes >= pruned.subgraph.num_nodes

    def test_weight_range_policy(self, core_graph, toy_task):
        summary = PCSTSummarizer(
            core_graph, prize_policy=PrizePolicy.WEIGHT_RANGE
        ).summarize(toy_task)
        assert summary.terminal_coverage == 1.0

    def test_degree_centrality_policy(self, core_graph, toy_task):
        summary = PCSTSummarizer(
            core_graph, prize_policy=PrizePolicy.DEGREE_CENTRALITY
        ).summarize(toy_task)
        assert summary.terminal_coverage == 1.0

    def test_item_boosted_policy_increases_item_share(
        self, small_kg, test_bench
    ):
        from repro.core.scenarios import user_centric_task
        from repro.metrics import actionability

        per_user = test_bench.recommendations("PGPR")
        user = test_bench.eval_users[0]
        task = user_centric_task(per_user[user], 5)
        binary = PCSTSummarizer(test_bench.graph).summarize(task)
        boosted = PCSTSummarizer(
            test_bench.graph,
            prize_policy=PrizePolicy.ITEM_BOOSTED,
            side_prize=0.6,
        ).summarize(task)
        # The policy exists to favor item inclusion; allow equality since
        # small tasks may already be item-saturated.
        assert actionability(boosted) >= actionability(binary) - 0.15

    def test_invalid_side_prize_rejected(self, core_graph):
        with pytest.raises(ValueError):
            PCSTSummarizer(core_graph, side_prize=1.5)

    def test_strong_pruning_collapses_binary(self, core_graph, toy_task):
        summary = PCSTSummarizer(
            core_graph, strong_pruning=True
        ).summarize(toy_task)
        # Unit prizes + unit costs: connections never pay for themselves.
        assert summary.subgraph.num_edges <= core_graph.num_edges

    def test_edge_weight_mode_runs(self, core_graph, toy_task):
        summary = PCSTSummarizer(
            core_graph, use_edge_weights=True
        ).summarize(toy_task)
        assert summary.params["use_edge_weights"] is True
        assert summary.terminal_coverage == 1.0
