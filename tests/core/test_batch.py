"""BatchSummarizer: parity with the per-task facade, caching, staleness."""

import pytest

# The task codec moved to the versioned protocol module; the batch
# names survive only as deprecated shims (pinned in
# tests/serving/test_protocol.py).
from repro.api.protocol import task_from_json, task_to_json
from repro.core.batch import (
    BatchSummarizer,
    TerminalClosureCache,
    dump_tasks_jsonl,
    load_tasks_jsonl,
)
from repro.core.scenarios import Scenario, SummaryTask
from repro.core.summarizer import METHODS, Summarizer
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.paths import Path


def canonical(explanation):
    """Comparable form of a summary: nodes plus weighted edge list."""
    subgraph = explanation.subgraph
    return (
        sorted(subgraph.nodes()),
        sorted((e.source, e.target, e.weight) for e in subgraph.edges()),
    )


@pytest.fixture(scope="module")
def bench_tasks(test_bench):
    """A mixed workload: user-centric tasks, with one repeat."""
    tasks = list(
        test_bench.tasks(Scenario.USER_CENTRIC, "PGPR", 4).values()
    )
    assert len(tasks) >= 2
    return [*tasks, tasks[0]]


class TestParityWithSummarizer:
    @pytest.mark.parametrize("method", METHODS)
    def test_output_equals_per_task_loop(self, method, test_bench, bench_tasks):
        expected = [
            Summarizer(test_bench.graph, method=method).summarize(task)
            for task in bench_tasks
        ]
        report = BatchSummarizer(test_bench.graph, method=method).run(
            bench_tasks
        )
        assert len(report.results) == len(bench_tasks)
        for exp, result in zip(expected, report.results):
            assert canonical(exp) == canonical(result.explanation)

    def test_workers_do_not_change_results(self, test_bench, bench_tasks):
        sequential = BatchSummarizer(test_bench.graph, method="ST").run(
            bench_tasks
        )
        threaded = BatchSummarizer(
            test_bench.graph, method="ST", workers=4
        ).run(bench_tasks)
        for a, b in zip(sequential.results, threaded.results):
            assert canonical(a.explanation) == canonical(b.explanation)

    def test_dict_and_frozen_engines_agree(self, test_bench, bench_tasks):
        frozen_engine = Summarizer(test_bench.graph, method="ST")
        dict_engine = Summarizer(
            test_bench.graph, method="ST", engine="dict"
        )
        for task in bench_tasks:
            assert canonical(frozen_engine.summarize(task)) == canonical(
                dict_engine.summarize(task)
            )


class TestReportAndCache:
    def test_report_fields(self, test_bench, bench_tasks):
        report = BatchSummarizer(test_bench.graph, method="ST").run(
            bench_tasks
        )
        assert report.method == "ST"
        assert report.total_seconds > 0
        assert len(report.task_seconds) == len(bench_tasks)
        assert all(seconds >= 0 for seconds in report.task_seconds)
        assert report.throughput > 0
        assert "batch method=ST" in report.summary()

    def test_repeated_task_hits_cache(self, test_bench, bench_tasks):
        report = BatchSummarizer(test_bench.graph, method="ST").run(
            bench_tasks
        )
        # The workload repeats its first task, so at least that task's
        # closure Dijkstras must come from the cache.
        assert report.cache_hits > 0

    def test_non_st_methods_skip_cache(self, test_bench, bench_tasks):
        report = BatchSummarizer(test_bench.graph, method="Union").run(
            bench_tasks
        )
        assert report.cache_hits == 0 and report.cache_misses == 0

    def test_throughput_guards_near_zero_elapsed(self):
        """A trivially small batch finishing inside one timer tick must
        report 0.0 tasks/s, not inf (or an absurd rate)."""
        from repro.core.batch import BatchReport, BatchResult, TaskFailure

        result = BatchResult(
            index=0,
            task=SummaryTask(
                scenario=Scenario.USER_CENTRIC,
                terminals=("u:0",),
                paths=(),
                anchors=(),
                focus=("u:0",),
            ),
            explanation=None,
            failure=TaskFailure(cause="error", message="placeholder"),
            seconds=0.0,
        )
        for elapsed in (0.0, 1e-12, -1.0):
            report = BatchReport(
                method="Union",
                results=(result,),
                freeze_seconds=0.0,
                total_seconds=elapsed,
            )
            assert report.throughput == 0.0
        empty = BatchReport(
            method="Union",
            results=(),
            freeze_seconds=0.0,
            total_seconds=1.0,
        )
        assert empty.throughput == 0.0
        real = BatchReport(
            method="Union",
            results=(result,),
            freeze_seconds=0.0,
            total_seconds=0.5,
        )
        assert real.throughput == 2.0

    def test_cache_lru_bound(self):
        cache = TerminalClosureCache(maxsize=2)
        graph = KnowledgeGraph()
        graph.add_edge("u:0", "i:0", 1.0)
        graph.add_edge("u:0", "i:1", 1.0)
        graph.add_edge("u:1", "i:0", 1.0)
        frozen = graph.freeze()
        pairs = cache.pair_fn(frozen, frozen.stored_costs())
        for source in ("u:0", "i:0", "i:1", "u:1"):
            pairs(source, {"u:0", "u:1"} - {source})
        assert len(cache) <= 2

    def test_cache_cleared_on_refreeze(self):
        cache = TerminalClosureCache()
        graph = KnowledgeGraph()
        graph.add_edge("u:0", "i:0", 1.0)
        graph.add_edge("u:1", "i:0", 1.0)
        pairs = cache.pair_fn(graph.freeze(), graph.freeze().stored_costs())
        pairs("u:0", {"u:1"})
        assert len(cache) == 1
        graph.add_edge("u:0", "i:1", 2.0)
        cache.pair_fn(graph.freeze(), graph.freeze().stored_costs())
        assert len(cache) == 0

    def test_stale_view_result_not_inserted_after_refreeze(self):
        """A pairs fn bound to an old frozen view must not repopulate
        the cache after it was rebound to a newer view (thread race)."""
        cache = TerminalClosureCache()
        graph = KnowledgeGraph()
        graph.add_edge("u:0", "i:0", 1.0)
        graph.add_edge("u:1", "i:0", 1.0)
        old_frozen = graph.freeze()
        old_pairs = cache.pair_fn(old_frozen, old_frozen.stored_costs())
        graph.set_weight("u:0", "i:0", 9.0)
        new_frozen = graph.freeze()
        cache.pair_fn(new_frozen, new_frozen.stored_costs())
        dist, _ = old_pairs("u:0", {"u:1"})  # still valid for its caller
        assert dist["i:0"] == 1.0
        assert len(cache) == 0  # but never cached against the new view

    def test_rejects_unknown_method_and_workers(self, test_bench):
        with pytest.raises(ValueError, match="unknown method"):
            BatchSummarizer(test_bench.graph, method="nope")
        with pytest.raises(ValueError, match="workers"):
            BatchSummarizer(test_bench.graph, workers=-1)


class TestPartialReuse:
    """λ-aware partial reuse: boosted closures derived from shared
    base-cost runs, cutting across tasks with disjoint boost sets."""

    @pytest.fixture()
    def boosted_workload(self):
        """A graph plus λ>0 tasks whose boost sets are pairwise disjoint
        (each task boosts its own user's rating edges), so the plain
        signature-keyed cache can never share closures between them."""
        import numpy as np

        rng = np.random.default_rng(11)
        graph = KnowledgeGraph()
        num_users, num_items = 8, 14
        for i in range(num_items):
            u = i % num_users
            graph.add_edge(f"u:{u}", f"i:{i}", float(rng.integers(1, 6)))
            graph.add_edge(
                f"u:{(u + 3) % num_users}", f"i:{i}",
                float(rng.integers(1, 6)),
            )
            graph.add_edge(f"i:{i}", f"e:g:{i % 3}", 0.0, "g")
        tasks = []
        for u in range(num_users):
            user = f"u:{u}"
            items = sorted(graph.neighbors(user))[:3]
            tasks.append(
                SummaryTask(
                    scenario=Scenario.USER_CENTRIC,
                    terminals=(user, *items),
                    paths=tuple(Path(nodes=(user, i)) for i in items),
                    anchors=tuple(items),
                    focus=(user,),
                    k=len(items),
                )
            )
        return graph, tasks

    def test_base_runs_reused_across_disjoint_boosts(self, boosted_workload):
        graph, tasks = boosted_workload
        engine = BatchSummarizer(
            graph, method="ST", lam=2.0, partial_reuse=True
        )
        report = engine.run(tasks)
        # Every task's closures were derived by patching, and the
        # memoized base runs were re-read more than once — the reuse
        # the per-signature cache could never provide here.
        assert report.cache_patched > 0
        assert report.cache_base_hits > 1
        assert "λ-aware reuse" in report.summary()
        assert "base-run hits" in report.summary()

    def test_results_match_fresh_summarizer(self, boosted_workload):
        graph, tasks = boosted_workload
        fresh = [
            Summarizer(graph, method="ST", lam=2.0).summarize(task)
            for task in tasks
        ]
        report = BatchSummarizer(
            graph, method="ST", lam=2.0, partial_reuse=True
        ).run(tasks)
        for expected, result in zip(fresh, report.results):
            assert canonical(expected) == canonical(result.explanation)

    def test_defaults_on_with_escape_hatch(self, boosted_workload):
        """λ-aware reuse is the default (canonical-SPT makes it safe);
        partial_reuse=False restores always-fresh boosted closures."""
        graph, tasks = boosted_workload
        report = BatchSummarizer(graph, method="ST", lam=2.0).run(tasks)
        assert report.cache_patched > 0
        cold = BatchSummarizer(
            graph, method="ST", lam=2.0, partial_reuse=False
        ).run(tasks)
        assert cold.cache_patched == 0
        for derived, fresh in zip(report.results, cold.results):
            assert canonical(derived.explanation) == canonical(
                fresh.explanation
            )

    def test_stale_base_runs_not_served_after_rebind(self, boosted_workload):
        """Base entries are index-keyed, so a pairs fn bound to an old
        frozen view must not read entries the cache stored for the new
        view (the index -> node mapping changed)."""
        from repro.core.batch import TerminalClosureCache
        from repro.core.weighting import ExplanationWeighting

        graph, tasks = boosted_workload
        task = tasks[0]
        cache = TerminalClosureCache(partial_reuse=True)
        old_frozen = graph.freeze()
        old_costs = ExplanationWeighting(
            graph=graph, task=task, lam=2.0
        ).slot_costs(old_frozen)
        old_pairs = cache.pair_fn(old_frozen, old_costs)

        graph.set_weight(task.terminals[0], task.terminals[1], 2.5)
        new_frozen = graph.freeze()
        new_costs = ExplanationWeighting(
            graph=graph, task=task, lam=2.0
        ).slot_costs(new_frozen)
        # Rebind to the new view and warm its base runs.
        new_pairs = cache.pair_fn(new_frozen, new_costs)
        source, *rest = task.terminals
        expected_new = new_pairs(source, set(rest))

        # The stale closure must compute against its own view, not read
        # the new view's base entries.
        dist, _ = old_pairs(source, set(rest))
        from repro.graph.shortest_paths import dijkstra_frozen

        fresh_old, _ = dijkstra_frozen(
            old_frozen, source, costs=old_costs, targets=set(rest)
        )
        for target in rest:
            assert dist[target] == fresh_old[target]
        # And the rebound cache still serves the new view correctly.
        for target in rest:
            assert expected_new[0][target] == new_pairs(
                source, set(rest)
            )[0][target]

    def test_patched_distances_are_exact(self, boosted_workload):
        """The derived closure's distances equal a fresh boosted run's
        (the tie-tolerant core guarantee, independent of tree shape)."""
        from repro.core.weighting import ExplanationWeighting
        from repro.graph.shortest_paths import dijkstra_frozen

        graph, tasks = boosted_workload
        frozen = graph.freeze()
        cache = TerminalClosureCache(partial_reuse=True)
        for task in tasks:
            weighting = ExplanationWeighting(
                graph=graph, task=task, lam=2.0
            )
            costs = weighting.slot_costs(frozen)
            assert costs.overrides  # λ>0 with paths: boosts exist
            pairs = cache.pair_fn(frozen, costs)
            source, *rest = task.terminals
            dist, prev = pairs(source, set(rest))
            fresh_dist, _ = dijkstra_frozen(
                frozen, source, costs=costs, targets=set(rest)
            )
            for target in rest:
                assert dist[target] == pytest.approx(
                    fresh_dist[target], abs=1e-12
                )
                # And the recorded chain is a real path of that length.
                walk = [target]
                while walk[-1] != source:
                    walk.append(prev[walk[-1]])
                total = 0.0
                for a, b in zip(walk, walk[1:]):
                    assert graph.has_edge(a, b)
                    total += weighting.cost(a, b, graph.weight(a, b))
                assert total == pytest.approx(dist[target], abs=1e-12)
        assert cache.patched > 0


class TestProcessBackend:
    """Shared-memory process pool: parity, merging, fallback, teardown."""

    @pytest.mark.parametrize("method", METHODS)
    def test_backends_produce_identical_output(
        self, method, test_bench, bench_tasks
    ):
        serial = BatchSummarizer(
            test_bench.graph, method=method, parallel="serial"
        ).run(bench_tasks)
        threaded = BatchSummarizer(
            test_bench.graph, method=method, parallel="threads", workers=2
        ).run(bench_tasks)
        processes = BatchSummarizer(
            test_bench.graph, method=method, parallel="processes", workers=2
        ).run(bench_tasks)
        assert serial.parallel == "serial"
        assert threaded.parallel == "threads"
        assert processes.parallel == "processes"
        for a, b, c in zip(
            serial.results, threaded.results, processes.results
        ):
            assert (
                canonical(a.explanation)
                == canonical(b.explanation)
                == canonical(c.explanation)
            )

    def test_boosted_lambda_parity_across_backends(self, test_bench):
        tasks = list(
            test_bench.tasks(Scenario.USER_CENTRIC, "PGPR", 4).values()
        )
        serial = BatchSummarizer(
            test_bench.graph, method="ST", lam=2.0, parallel="serial"
        ).run(tasks)
        processes = BatchSummarizer(
            test_bench.graph, method="ST", lam=2.0, parallel="processes",
            workers=2,
        ).run(tasks)
        for a, b in zip(serial.results, processes.results):
            assert canonical(a.explanation) == canonical(b.explanation)

    def test_report_merges_worker_timings_and_counters(
        self, test_bench, bench_tasks
    ):
        report = BatchSummarizer(
            test_bench.graph,
            method="ST",
            parallel="processes",
            workers=2,
            chunk_size=1,
        ).run(bench_tasks)
        assert report.parallel == "processes"
        assert report.workers == 2
        assert [r.index for r in report.results] == list(
            range(len(bench_tasks))
        )
        assert all(r.seconds >= 0 for r in report.results)
        # Every task misses at least once somewhere (per-worker caches),
        # and the counters are aggregated across workers.
        assert report.cache_misses + report.cache_patched > 0
        assert "parallel=processes" in report.summary()

    def test_no_shared_memory_leak(self, test_bench, bench_tasks):
        import os

        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        before = {
            name
            for name in os.listdir("/dev/shm")
            if name.startswith("rxg")
        }
        BatchSummarizer(
            test_bench.graph, method="ST", parallel="processes", workers=2
        ).run(bench_tasks)
        after = {
            name
            for name in os.listdir("/dev/shm")
            if name.startswith("rxg")
        }
        assert after <= before

    def test_falls_back_to_local_when_export_fails(
        self, monkeypatch, test_bench, bench_tasks
    ):
        from repro.graph.csr import FrozenGraph

        def broken_export(self):
            raise OSError("no shared memory on this box")

        monkeypatch.setattr(FrozenGraph, "to_shared", broken_export)
        engine = BatchSummarizer(
            test_bench.graph, method="ST", parallel="processes"
        )
        with pytest.warns(RuntimeWarning, match="process backend"):
            report = engine.run(bench_tasks)
        assert report.parallel == "serial"
        expected = [
            Summarizer(test_bench.graph, method="ST").summarize(task)
            for task in bench_tasks
        ]
        for exp, result in zip(expected, report.results):
            assert canonical(exp) == canonical(result.explanation)

    def test_auto_backend_stays_local_on_small_graphs(
        self, test_bench, bench_tasks
    ):
        engine = BatchSummarizer(test_bench.graph, method="ST", workers=2)
        assert test_bench.graph.num_nodes < engine.AUTO_PROCESS_MIN_NODES
        report = engine.run(bench_tasks)
        assert report.parallel == "threads"

    def test_rejects_unknown_backend_and_chunk_size(self, test_bench):
        with pytest.raises(ValueError, match="parallel backend"):
            BatchSummarizer(test_bench.graph, parallel="gpu")
        with pytest.raises(ValueError, match="chunk_size"):
            BatchSummarizer(test_bench.graph, chunk_size=0)

    def test_task_errors_propagate_like_serial(self, test_bench):
        """A genuinely failing task raises, not silently falls back."""
        bad = SummaryTask(
            scenario=Scenario.USER_CENTRIC,
            terminals=("u:missing-node", "u:also-missing"),
            paths=(),
            anchors=("u:also-missing",),
            focus=("u:missing-node",),
            k=1,
        )
        engine = BatchSummarizer(
            test_bench.graph, method="ST", parallel="processes", workers=2
        )
        with pytest.raises(KeyError):
            engine.run([bad])


class TestStalenessInvalidation:
    """Mutating the graph after freezing must invalidate every cache."""

    def _graph(self):
        graph = KnowledgeGraph()
        # Two parallel routes u:0 -> i:1: direct (heavy) and via e:g:0.
        graph.add_edge("u:0", "i:0", 5.0)
        graph.add_edge("i:0", "e:g:0", 0.0, "g")
        graph.add_edge("e:g:0", "i:1", 0.0, "g")
        graph.add_edge("u:0", "i:1", 1.0)
        graph.add_edge("u:1", "i:1", 2.0)
        return graph

    def _task(self):
        return SummaryTask(
            scenario=Scenario.USER_CENTRIC,
            terminals=("u:0", "i:1"),
            paths=(Path(nodes=("u:0", "i:1")),),
            anchors=("i:1",),
            focus=("u:0",),
            k=1,
        )

    def test_summarizer_sees_mutation_after_freeze(self):
        graph = self._graph()
        summarizer = Summarizer(graph, method="ST", lam=100.0)
        before = summarizer.summarize(self._task())
        assert ("i:1", "u:0") in {e.key() for e in before.subgraph.edges()}
        frozen = graph.freeze()
        # Remove the boosted direct edge: the summary must reroute.
        graph.remove_edge("u:0", "i:1")
        assert frozen.is_stale()
        after = summarizer.summarize(
            SummaryTask(
                scenario=Scenario.USER_CENTRIC,
                terminals=("u:0", "i:1"),
                paths=(),
                anchors=("i:1",),
                focus=("u:0",),
                k=1,
            )
        )
        assert ("i:1", "u:0") not in {e.key() for e in after.subgraph.edges()}
        assert "e:g:0" in after.subgraph

    def test_weight_mutation_refreshes_boost_normalization(self):
        """Regression: the stored-weight max cache must track mutations."""
        from repro.core.weighting import ExplanationWeighting

        graph = self._graph()
        task = self._task()
        first = ExplanationWeighting(graph=graph, task=task, lam=1.0)
        assert first._max_weight == 5.0
        graph.set_weight("u:0", "i:0", 50.0)
        second = ExplanationWeighting(graph=graph, task=task, lam=1.0)
        assert second._max_weight == 50.0

    def test_batch_refreezes_between_runs(self):
        graph = self._graph()
        engine = BatchSummarizer(graph, method="ST")
        first = engine.run([self._task()])
        graph.set_weight("u:0", "i:1", 3.0)
        second = engine.run([self._task()])
        edge_weight = {
            e.key(): e.weight
            for e in second.results[0].explanation.subgraph.edges()
        }
        assert edge_weight.get(("i:1", "u:0")) == 3.0
        assert first.results[0].explanation.subgraph is not (
            second.results[0].explanation.subgraph
        )


class TestJsonlRoundtrip:
    @staticmethod
    def _assert_roundtrip(task: SummaryTask) -> None:
        restored = task_from_json(task_to_json(task))
        assert restored.scenario is task.scenario
        assert restored.terminals == task.terminals
        assert restored.anchors == task.anchors
        assert restored.focus == task.focus
        assert restored.k == task.k
        assert [p.nodes for p in restored.paths] == [
            p.nodes for p in task.paths
        ]

    @pytest.mark.parametrize("scenario", list(Scenario))
    def test_roundtrip_all_scenarios(self, scenario):
        """Every Scenario variant survives to-JSON-and-back verbatim."""
        self._assert_roundtrip(
            SummaryTask(
                scenario=scenario,
                terminals=("u:0", "u:1", "i:0", "i:1"),
                paths=(
                    Path(nodes=("u:0", "i:0")),
                    Path(nodes=("u:1", "i:1")),
                ),
                anchors=("i:0", "i:1"),
                focus=("u:0", "u:1"),
                k=2,
            )
        )

    @pytest.mark.parametrize(
        "scenario", [Scenario.USER_GROUP, Scenario.ITEM_GROUP]
    )
    def test_roundtrip_group_tasks_with_duplicate_terminals(self, scenario):
        """Duplicate terminal entries (two group members sharing an
        item/user) must survive verbatim — order and multiplicity are
        part of the task's identity for tie-breaking."""
        task = SummaryTask(
            scenario=scenario,
            terminals=("u:0", "u:1", "i:0", "i:0", "u:0"),
            paths=(
                Path(nodes=("u:0", "i:0")),
                Path(nodes=("u:1", "i:0")),
            ),
            anchors=("i:0", "i:0"),
            focus=("u:0", "u:1"),
            k=1,
        )
        self._assert_roundtrip(task)
        restored = task_from_json(task_to_json(task))
        assert restored.terminals.count("i:0") == 2
        assert restored.terminals.count("u:0") == 2

    def test_task_json_roundtrip(self):
        task = SummaryTask(
            scenario=Scenario.USER_GROUP,
            terminals=("u:0", "u:1", "i:0"),
            paths=(Path(nodes=("u:0", "i:0")),),
            anchors=("i:0",),
            focus=("u:0", "u:1"),
            k=3,
        )
        restored = task_from_json(task_to_json(task))
        assert restored.scenario is task.scenario
        assert restored.terminals == task.terminals
        assert restored.anchors == task.anchors
        assert restored.focus == task.focus
        assert restored.k == task.k
        assert [p.nodes for p in restored.paths] == [
            p.nodes for p in task.paths
        ]

    def test_file_roundtrip(self, tmp_path):
        tasks = [
            SummaryTask(
                scenario=Scenario.USER_CENTRIC,
                terminals=(f"u:{i}", "i:0"),
                paths=(),
                anchors=("i:0",),
                focus=(f"u:{i}",),
                k=1,
            )
            for i in range(3)
        ]
        path = tmp_path / "tasks.jsonl"
        dump_tasks_jsonl(tasks, path)
        restored = load_tasks_jsonl(path)
        assert [t.terminals for t in restored] == [t.terminals for t in tasks]

    def test_bad_line_reports_location(self, tmp_path):
        path = tmp_path / "tasks.jsonl"
        path.write_text('{"scenario": "user-centric", "terminals": []}\n')
        with pytest.raises(ValueError, match="tasks.jsonl:1"):
            load_tasks_jsonl(path)

    def test_wrong_types_report_location_too(self, tmp_path):
        path = tmp_path / "tasks.jsonl"
        path.write_text(
            '{"scenario": "user-centric", "terminals": ["u:1"], "paths": 5}\n'
        )
        with pytest.raises(ValueError, match="tasks.jsonl:1"):
            load_tasks_jsonl(path)

    def test_default_frozen_costs_signature_never_aliases(self):
        from repro.graph.csr import FrozenCosts

        first = FrozenCosts([1.0, 1.0])
        second = FrozenCosts([2.0, 0.5])
        assert first.signature != second.signature
        assert first.signature != ()
