"""C(S) = 1/|E_S|."""

import pytest

from repro.core.explanation import PathSetExplanation
from repro.graph.paths import Path
from repro.metrics import comprehensibility


class TestComprehensibility:
    def test_inverse_of_total_path_length(self, path_explanation):
        assert comprehensibility(path_explanation) == pytest.approx(1 / 6)

    def test_summary_value(self, summary_explanation):
        assert comprehensibility(summary_explanation) == pytest.approx(
            1 / summary_explanation.subgraph.num_edges
        )

    def test_repeated_edges_count_for_paths(self):
        explanation = PathSetExplanation(
            paths=(Path(nodes=("u:0", "i:0")), Path(nodes=("u:0", "i:0")))
        )
        assert comprehensibility(explanation) == pytest.approx(0.5)

    def test_shorter_is_more_comprehensible(self, path_explanation):
        shorter = PathSetExplanation(paths=(Path(nodes=("u:0", "i:0")),))
        assert comprehensibility(shorter) > comprehensibility(
            path_explanation
        )

    def test_summary_beats_paths_here(
        self, path_explanation, summary_explanation
    ):
        assert comprehensibility(summary_explanation) > comprehensibility(
            path_explanation
        )
