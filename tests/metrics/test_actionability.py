"""A(S) = item nodes / total nodes."""

import pytest

from repro.core.explanation import PathSetExplanation
from repro.graph.paths import Path
from repro.metrics import actionability


class TestActionability:
    def test_path_multiset_share(self, path_explanation):
        # 8 mentions, items: i:0, i:1, i:2, i:3 -> 4/8.
        assert actionability(path_explanation) == pytest.approx(0.5)

    def test_summary_unique_share(self, summary_explanation):
        mentions = summary_explanation.node_mentions()
        items = sum(1 for n in mentions if n.startswith("i:"))
        assert actionability(summary_explanation) == pytest.approx(
            items / len(mentions)
        )

    def test_all_item_path(self):
        explanation = PathSetExplanation(
            paths=(Path(nodes=("i:0", "i:1"), user="i:0", item="i:1"),)
        )
        assert actionability(explanation) == 1.0

    def test_no_items(self):
        explanation = PathSetExplanation(
            paths=(Path(nodes=("u:0", "e:g:0"), user="u:0", item="e:g:0"),)
        )
        assert actionability(explanation) == 0.0

    def test_range(self, path_explanation, summary_explanation):
        for explanation in (path_explanation, summary_explanation):
            assert 0.0 <= actionability(explanation) <= 1.0
