"""Consistency across k."""

import pytest

from repro.core.explanation import PathSetExplanation
from repro.graph.paths import Path
from repro.metrics import consistency
from repro.metrics.consistency import jaccard_nodes


def paths_explanation(*node_tuples):
    return PathSetExplanation(
        paths=tuple(
            Path(nodes=t, user=t[0], item=t[-1]) for t in node_tuples
        )
    )


class TestJaccardNodes:
    def test_identical(self):
        a = paths_explanation(("u:0", "i:0"))
        assert jaccard_nodes(a, a) == 1.0

    def test_disjoint(self):
        a = paths_explanation(("u:0", "i:0"))
        b = paths_explanation(("u:1", "i:1"))
        assert jaccard_nodes(a, b) == 0.0

    def test_partial_overlap(self):
        a = paths_explanation(("u:0", "i:0"))
        b = paths_explanation(("u:0", "i:1"))
        assert jaccard_nodes(a, b) == pytest.approx(1 / 3)


class TestConsistency:
    def test_incremental_growth_is_consistent(self):
        sequence = [
            paths_explanation(("u:0", "i:0")),
            paths_explanation(("u:0", "i:0"), ("u:0", "i:1")),
            paths_explanation(
                ("u:0", "i:0"), ("u:0", "i:1"), ("u:0", "i:2")
            ),
        ]
        value = consistency(sequence)
        assert value == pytest.approx((2 / 3 + 3 / 4) / 2)

    def test_identical_sequence_is_one(self):
        explanation = paths_explanation(("u:0", "i:0"))
        assert consistency([explanation] * 4) == 1.0

    def test_single_entry_is_one(self):
        assert consistency([paths_explanation(("u:0", "i:0"))]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            consistency([])

    def test_total_churn_is_zero(self):
        sequence = [
            paths_explanation(("u:0", "i:0")),
            paths_explanation(("u:1", "i:1")),
        ]
        assert consistency(sequence) == 0.0
