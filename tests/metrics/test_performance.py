"""Timing and memory instrumentation."""

import time

import pytest

from repro.metrics.performance import PerformanceProbe, measure


class TestMeasure:
    def test_returns_result(self):
        measurement = measure(lambda x: x * 2, 21)
        assert measurement.result == 42

    def test_records_elapsed_time(self):
        measurement = measure(time.sleep, 0.02)
        assert measurement.seconds >= 0.015

    def test_tracks_peak_memory(self):
        measurement = measure(lambda: bytearray(4 * 1024 * 1024))
        assert measurement.peak_bytes >= 4 * 1024 * 1024

    def test_memory_tracking_optional(self):
        measurement = measure(lambda: 1, track_memory=False)
        assert measurement.peak_bytes == 0

    def test_kwargs_forwarded(self):
        measurement = measure(lambda *, x: x, x=3)
        assert measurement.result == 3

    def test_exception_stops_tracemalloc(self):
        import tracemalloc

        with pytest.raises(RuntimeError):
            measure(lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        assert not tracemalloc.is_tracing()


class TestPerformanceProbe:
    def test_accumulates_by_key(self):
        probe = PerformanceProbe(label="test")
        probe.run(1, lambda: None)
        probe.run(1, lambda: None)
        probe.run(2, lambda: None)
        seconds = probe.mean_seconds()
        assert set(seconds) == {1, 2}

    def test_run_returns_value(self):
        probe = PerformanceProbe()
        assert probe.run("k", lambda: "value") == "value"

    def test_mean_peak_in_mib(self):
        probe = PerformanceProbe()
        probe.run("k", lambda: bytearray(2 * 1024 * 1024))
        assert probe.mean_peak_mb()["k"] >= 2.0
