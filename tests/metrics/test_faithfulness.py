"""Faithfulness metric (PLM hallucination axis)."""

import pytest

from repro.core.explanation import PathSetExplanation
from repro.graph.paths import Path
from repro.metrics.faithfulness import faithfulness, hallucination_rate


class TestFaithfulness:
    def test_fully_faithful_path_set(self, metric_graph):
        explanation = PathSetExplanation(
            paths=(Path(nodes=("u:0", "i:0", "e:g:0", "i:1")),)
        )
        assert faithfulness(explanation, metric_graph) == 1.0

    def test_hallucinated_edges_counted(self, metric_graph):
        explanation = PathSetExplanation(
            paths=(
                Path(nodes=("u:0", "i:0")),  # real
                Path(nodes=("u:0", "i:3")),  # invented
            )
        )
        assert faithfulness(explanation, metric_graph) == pytest.approx(0.5)

    def test_summary_always_faithful(
        self, metric_graph, summary_explanation
    ):
        assert faithfulness(summary_explanation, metric_graph) == 1.0

    def test_plm_vs_pearlm_contrast(self, test_bench):
        """The PLM family's defining contrast, measured end to end."""
        from repro.recommenders import PLMRecommender

        plm = PLMRecommender(hallucination_rate=0.8, seed=5).fit(
            test_bench.graph, test_bench.dataset.ratings
        )
        pearlm = test_bench.recommender("PEARLM")
        users = test_bench.eval_users[:4]
        plm_paths = [
            rec.path for u in users for rec in plm.recommend(u, 6)
        ]
        pearlm_paths = [
            rec.path for u in users for rec in pearlm.recommend(u, 6)
        ]
        assert hallucination_rate(plm_paths, test_bench.graph) > 0.0
        assert hallucination_rate(pearlm_paths, test_bench.graph) == 0.0


class TestHallucinationRate:
    def test_empty_paths(self, metric_graph):
        assert hallucination_rate([], metric_graph) == 0.0

    def test_per_path_granularity(self, metric_graph):
        paths = [
            Path(nodes=("u:0", "i:0", "e:g:0", "i:1")),  # all hops real
            Path(nodes=("u:0", "i:0", "e:d:0", "i:1"), item="i:1"),  # 1 bad hop
        ]
        assert hallucination_rate(paths, metric_graph) == pytest.approx(0.5)
