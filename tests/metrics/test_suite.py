"""Evaluate-everything helper."""

import pytest

from repro.metrics.suite import STATIC_METRICS, evaluate_explanation


class TestEvaluateExplanation:
    def test_all_metrics_present(self, metric_graph, path_explanation):
        report = evaluate_explanation(path_explanation, metric_graph)
        values = report.as_dict()
        assert set(values) == set(STATIC_METRICS)

    def test_values_match_individual_metrics(
        self, metric_graph, summary_explanation
    ):
        from repro.metrics import comprehensibility, privacy, relevance

        report = evaluate_explanation(summary_explanation, metric_graph)
        assert report.comprehensibility == comprehensibility(
            summary_explanation
        )
        assert report.privacy == privacy(summary_explanation)
        assert report.relevance == relevance(
            summary_explanation, metric_graph
        )

    def test_getitem(self, metric_graph, path_explanation):
        report = evaluate_explanation(path_explanation, metric_graph)
        assert report["diversity"] == report.diversity

    def test_getitem_unknown_raises(self, metric_graph, path_explanation):
        report = evaluate_explanation(path_explanation, metric_graph)
        with pytest.raises(KeyError):
            report["sparkles"]
