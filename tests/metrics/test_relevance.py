"""Relevance: Σ w_M over explanation edges."""

import pytest

from repro.core.explanation import PathSetExplanation
from repro.graph.paths import Path
from repro.metrics import relevance


class TestRelevance:
    def test_path_set_sums_interaction_weights(
        self, metric_graph, path_explanation
    ):
        # Paths: u:0-i:0 (5) + u:0-i:2 (3); knowledge edges contribute 0.
        assert relevance(path_explanation, metric_graph) == 8.0

    def test_summary_sums_subgraph_weights(
        self, metric_graph, summary_explanation
    ):
        expected = sum(
            e.weight for e in summary_explanation.subgraph.edges()
        )
        assert relevance(summary_explanation, metric_graph) == expected

    def test_repeated_edges_count_twice_for_paths(self, metric_graph):
        explanation = PathSetExplanation(
            paths=(Path(nodes=("u:0", "i:0")), Path(nodes=("u:0", "i:0")))
        )
        assert relevance(explanation, metric_graph) == 10.0

    def test_hallucinated_edges_contribute_zero(self, metric_graph):
        explanation = PathSetExplanation(
            paths=(Path(nodes=("u:0", "i:3")),)  # not a real edge
        )
        assert relevance(explanation, metric_graph) == 0.0

    def test_non_negative(self, metric_graph, path_explanation):
        assert relevance(path_explanation, metric_graph) >= 0.0
