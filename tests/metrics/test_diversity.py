"""D(S): mean pairwise edge dissimilarity, incl. the fast-path formula."""

from itertools import combinations

import pytest

from repro.core.explanation import PathSetExplanation
from repro.graph.paths import Path
from repro.graph.types import undirected_key
from repro.metrics import diversity


def naive_diversity(edges) -> float:
    """Direct O(n^2) implementation of the paper's formula (oracle)."""
    keys = [undirected_key(u, v) for u, v in edges]
    pairs = list(combinations(range(len(keys)), 2))
    if not pairs:
        return 0.0
    total = 0.0
    for i, j in pairs:
        set_i, set_j = set(keys[i]), set(keys[j])
        jaccard = len(set_i & set_j) / len(set_i | set_j)
        total += 1.0 - jaccard
    return total / len(pairs)


class TestDiversity:
    def test_single_edge_is_zero(self):
        explanation = PathSetExplanation(paths=(Path(nodes=("u:0", "i:0")),))
        assert diversity(explanation) == 0.0

    def test_disjoint_edges_fully_diverse(self):
        explanation = PathSetExplanation(
            paths=(
                Path(nodes=("u:0", "i:0")),
                Path(nodes=("u:1", "i:1")),
            )
        )
        assert diversity(explanation) == pytest.approx(1.0)

    def test_repeated_edge_zero_diversity(self):
        explanation = PathSetExplanation(
            paths=(Path(nodes=("u:0", "i:0")), Path(nodes=("u:0", "i:0")))
        )
        assert diversity(explanation) == pytest.approx(0.0)

    def test_shared_endpoint_two_thirds(self):
        explanation = PathSetExplanation(
            paths=(
                Path(nodes=("u:0", "i:0")),
                Path(nodes=("u:0", "i:1")),
            )
        )
        assert diversity(explanation) == pytest.approx(2.0 / 3.0)

    def test_fast_formula_matches_naive(
        self, path_explanation, summary_explanation
    ):
        for explanation in (path_explanation, summary_explanation):
            assert diversity(explanation) == pytest.approx(
                naive_diversity(explanation.edge_mentions())
            )

    def test_fast_formula_matches_naive_on_random_paths(self):
        import numpy as np

        rng = np.random.default_rng(0)
        for _ in range(10):
            paths = []
            for p in range(4):
                nodes = [f"u:{rng.integers(0, 3)}"]
                nodes.append(f"i:{rng.integers(0, 6)}")
                nodes.append(f"e:g:{rng.integers(0, 3)}")
                nodes.append(f"i:{rng.integers(6, 12)}")
                paths.append(
                    Path(
                        nodes=tuple(nodes),
                        user=nodes[0],
                        item=nodes[-1],
                    )
                )
            explanation = PathSetExplanation(paths=tuple(paths))
            assert diversity(explanation) == pytest.approx(
                naive_diversity(explanation.edge_mentions())
            )

    def test_range(self, path_explanation, summary_explanation):
        for explanation in (path_explanation, summary_explanation):
            assert 0.0 <= diversity(explanation) <= 1.0
