"""Privacy: 1 - user-node share."""

import pytest

from repro.core.explanation import PathSetExplanation
from repro.graph.paths import Path
from repro.metrics import privacy


class TestPrivacy:
    def test_path_multiset_share(self, path_explanation):
        # 8 mentions, u:0 twice -> 1 - 2/8.
        assert privacy(path_explanation) == pytest.approx(0.75)

    def test_no_users_is_private(self):
        explanation = PathSetExplanation(
            paths=(Path(nodes=("i:0", "e:g:0"), user="i:0", item="e:g:0"),)
        )
        assert privacy(explanation) == 1.0

    def test_user_heavy_path_is_exposed(self):
        explanation = PathSetExplanation(
            paths=(
                Path(
                    nodes=("u:0", "i:0", "u:1", "i:1"),
                ),
            )
        )
        assert privacy(explanation) == pytest.approx(0.5)

    def test_summary_share(self, summary_explanation):
        mentions = summary_explanation.node_mentions()
        users = sum(1 for n in mentions if n.startswith("u:"))
        assert privacy(summary_explanation) == pytest.approx(
            1 - users / len(mentions)
        )

    def test_range(self, path_explanation, summary_explanation):
        for explanation in (path_explanation, summary_explanation):
            assert 0.0 <= privacy(explanation) <= 1.0
