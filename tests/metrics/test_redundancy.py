"""R(S): duplicate node appearances over explanation edges."""

import pytest

from repro.core.explanation import PathSetExplanation
from repro.graph.paths import Path
from repro.metrics import redundancy


class TestRedundancy:
    def test_single_edge_no_duplicates(self):
        explanation = PathSetExplanation(paths=(Path(nodes=("u:0", "i:0")),))
        assert redundancy(explanation) == 0.0

    def test_chain_interior_duplicated(self):
        # u-i-e: i appears in both edges -> 4 appearances, 3 unique.
        explanation = PathSetExplanation(
            paths=(Path(nodes=("u:0", "i:0", "e:g:0"), item="e:g:0"),)
        )
        assert redundancy(explanation) == pytest.approx(1 / 4)

    def test_repeated_paths_highly_redundant(self):
        explanation = PathSetExplanation(
            paths=(Path(nodes=("u:0", "i:0")), Path(nodes=("u:0", "i:0")))
        )
        assert redundancy(explanation) == pytest.approx(0.5)

    def test_shared_user_across_paths(self, path_explanation):
        # 12 appearances (2 paths x 3 edges x 2 endpoints), u:0 twice,
        # interior nodes twice each within their chains.
        value = redundancy(path_explanation)
        assert 0.0 < value < 1.0

    def test_summary_less_redundant_than_paths(
        self, path_explanation, summary_explanation
    ):
        assert redundancy(summary_explanation) <= redundancy(
            path_explanation
        )

    def test_range(self, path_explanation, summary_explanation):
        for explanation in (path_explanation, summary_explanation):
            assert 0.0 <= redundancy(explanation) < 1.0
