"""Metric-suite fixtures: canned explanations of both forms."""

import pytest

from repro.core.explanation import PathSetExplanation
from repro.core.scenarios import Scenario, SummaryTask
from repro.core.steiner_summary import SteinerSummarizer
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.paths import Path


@pytest.fixture
def metric_graph() -> KnowledgeGraph:
    """Small graph with named weights for metric arithmetic."""
    graph = KnowledgeGraph()
    graph.add_edge("u:0", "i:0", 5.0)
    graph.add_edge("u:0", "i:2", 3.0)
    graph.add_edge("u:1", "i:1", 4.0)
    graph.add_edge("i:0", "e:g:0", 0.0, "g")
    graph.add_edge("i:1", "e:g:0", 0.0, "g")
    graph.add_edge("i:2", "e:d:0", 0.0, "d")
    graph.add_edge("i:1", "e:d:0", 0.0, "d")
    graph.add_edge("i:3", "e:d:0", 0.0, "d")
    return graph


@pytest.fixture
def path_explanation() -> PathSetExplanation:
    return PathSetExplanation(
        paths=(
            Path(nodes=("u:0", "i:0", "e:g:0", "i:1")),
            Path(nodes=("u:0", "i:2", "e:d:0", "i:3")),
        )
    )


@pytest.fixture
def summary_explanation(metric_graph, path_explanation):
    task = SummaryTask(
        scenario=Scenario.USER_CENTRIC,
        terminals=("u:0", "i:1", "i:3"),
        paths=path_explanation.paths,
        anchors=("i:1", "i:3"),
        focus=("u:0",),
    )
    return SteinerSummarizer(metric_graph, lam=1.0).summarize(task)
