"""Failure injection and adversarial-topology robustness.

The summarizers and metrics must behave sensibly on degenerate graphs:
stars, chains, all-zero weights, near-disconnected topologies, and
pathological parameter values.
"""

import pytest

from repro.core.explanation import PathSetExplanation
from repro.core.scenarios import Scenario, SummaryTask
from repro.core.summarizer import Summarizer
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.paths import Path
from repro.metrics import evaluate_explanation


def star_graph(num_items: int = 8) -> KnowledgeGraph:
    """One user, one hub genre, items hanging off both."""
    graph = KnowledgeGraph()
    for index in range(num_items):
        graph.add_edge("u:0", f"i:{index}", 3.0)
        graph.add_edge(f"i:{index}", "e:g:0", 0.0, "g")
    return graph


def chain_graph(length: int = 12) -> KnowledgeGraph:
    """user - item - entity - item - entity - ... chain."""
    graph = KnowledgeGraph()
    previous = "u:0"
    for index in range(length):
        item = f"i:{index}"
        if previous.startswith("u:"):
            graph.add_edge(previous, item, 2.0)
        else:
            graph.add_edge(item, previous, 0.0, "g")
        entity = f"e:g:{index}"
        graph.add_edge(item, entity, 0.0, "g")
        previous = entity
    return graph


def task_over(graph, terminals, paths=()) -> SummaryTask:
    return SummaryTask(
        scenario=Scenario.USER_CENTRIC,
        terminals=tuple(terminals),
        paths=tuple(paths),
        anchors=tuple(t for t in terminals[1:]),
        focus=(terminals[0],),
    )


class TestAdversarialTopologies:
    @pytest.mark.parametrize("method", ["ST", "ST-fast", "PCST", "Union"])
    def test_star_graph(self, method):
        graph = star_graph()
        paths = [
            Path(nodes=("u:0", f"i:{i}"))
            for i in range(4)
        ]
        task = task_over(graph, ["u:0", "i:0", "i:1", "i:2", "i:3"], paths)
        summary = Summarizer(graph, method=method).summarize(task)
        report = evaluate_explanation(summary, graph)
        assert 0 <= report.privacy <= 1
        assert summary.subgraph.num_nodes >= 1

    @pytest.mark.parametrize("method", ["ST", "ST-fast", "PCST"])
    def test_long_chain(self, method):
        graph = chain_graph()
        task = task_over(graph, ["u:0", "i:11"])
        summary = Summarizer(graph, method=method).summarize(task)
        # The only route is the full chain.
        assert "u:0" in summary.subgraph
        assert "i:11" in summary.subgraph

    @pytest.mark.parametrize("method", ["ST", "PCST"])
    def test_all_zero_weights(self, method):
        graph = KnowledgeGraph()
        graph.add_edge("u:0", "i:0", 0.0 + 1e-12)
        graph.add_edge("i:0", "e:g:0", 0.0, "g")
        graph.add_edge("e:g:0", "i:1", 0.0, "g")
        task = task_over(graph, ["u:0", "i:1"])
        summary = Summarizer(graph, method=method).summarize(task)
        assert summary.terminal_coverage == 1.0

    def test_terminal_equal_to_focus_only(self):
        graph = star_graph(2)
        task = SummaryTask(
            scenario=Scenario.USER_CENTRIC,
            terminals=("u:0",),
            paths=(),
            anchors=(),
            focus=("u:0",),
        )
        summary = Summarizer(graph, method="ST").summarize(task)
        assert summary.subgraph.num_nodes == 1


class TestParameterEdges:
    def test_huge_lambda(self, test_bench):
        from repro.core.scenarios import user_centric_task

        per_user = test_bench.recommendations("PGPR")
        user = test_bench.eval_users[0]
        task = user_centric_task(per_user[user], 3)
        summary = Summarizer(
            test_bench.graph, method="ST", lam=1e9
        ).summarize(task)
        assert summary.terminal_coverage == 1.0

    def test_weight_influence_zero(self, test_bench):
        from repro.core.scenarios import user_centric_task

        per_user = test_bench.recommendations("PGPR")
        user = test_bench.eval_users[0]
        task = user_centric_task(per_user[user], 3)
        summary = Summarizer(
            test_bench.graph, method="ST", weight_influence=0.0
        ).summarize(task)
        assert summary.terminal_coverage == 1.0

    def test_metrics_on_single_hop_explanations(self, test_bench):
        explanation = PathSetExplanation(
            paths=(Path(nodes=("u:0", "i:0")),)
        )
        report = evaluate_explanation(explanation, test_bench.graph)
        assert report.comprehensibility == 1.0
        assert report.diversity == 0.0
        assert report.redundancy == 0.0


class TestScenarioEdgeCases:
    def test_group_of_one_equals_user_centric_terminals(self, test_bench):
        from repro.core.scenarios import (
            user_centric_task,
            user_group_task,
        )

        per_user = test_bench.recommendations("PGPR")
        user = test_bench.eval_users[0]
        single = user_group_task([user], per_user, 3)
        centric = user_centric_task(per_user[user], 3)
        assert set(single.terminals) == set(centric.terminals)

    def test_duplicate_group_members_collapse(self, test_bench):
        from repro.core.scenarios import user_group_task

        per_user = test_bench.recommendations("PGPR")
        user = test_bench.eval_users[0]
        task = user_group_task([user, user, user], per_user, 2)
        assert task.terminals.count(user) == 1
