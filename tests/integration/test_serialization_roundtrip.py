"""Serialization interplay with the pipeline: a saved/reloaded graph and
path set must produce identical summaries."""

from repro.core.scenarios import Scenario, SummaryTask, user_centric_task
from repro.core.summarizer import Summarizer
from repro.graph.io import (
    load_graph_json,
    load_paths_jsonl,
    save_graph_json,
    save_paths_jsonl,
)


class TestPipelineRoundTrip:
    def test_summary_identical_after_reload(self, test_bench, tmp_path):
        per_user = test_bench.recommendations("PGPR")
        user = test_bench.eval_users[0]
        task = user_centric_task(per_user[user], 4)

        graph_file = tmp_path / "kg.json"
        paths_file = tmp_path / "paths.jsonl"
        save_graph_json(test_bench.graph, graph_file)
        save_paths_jsonl(list(task.paths), paths_file)

        reloaded_graph = load_graph_json(graph_file)
        reloaded_paths = load_paths_jsonl(paths_file)
        reloaded_task = SummaryTask(
            scenario=Scenario.USER_CENTRIC,
            terminals=task.terminals,
            paths=tuple(reloaded_paths),
            anchors=task.anchors,
            focus=task.focus,
            k=task.k,
        )

        original = Summarizer(test_bench.graph, method="ST").summarize(task)
        reloaded = Summarizer(reloaded_graph, method="ST").summarize(
            reloaded_task
        )
        # Dijkstra tie-breaking follows adjacency insertion order, which
        # serialization canonicalizes — trees may differ among equal-cost
        # optima, but size, coverage and terminal sets must match.
        assert (
            reloaded.subgraph.num_edges == original.subgraph.num_edges
        ) or abs(
            reloaded.subgraph.num_edges - original.subgraph.num_edges
        ) <= 2
        assert reloaded.terminal_coverage == original.terminal_coverage
        assert set(task.terminals) <= set(reloaded.subgraph.nodes())

    def test_names_survive_round_trip(self, test_bench, tmp_path):
        graph_file = tmp_path / "kg.json"
        save_graph_json(test_bench.graph, graph_file)
        reloaded = load_graph_json(graph_file)
        named = [
            n
            for n in test_bench.graph.nodes()
            if test_bench.graph.name(n) != n
        ][:20]
        assert named
        for node in named:
            assert reloaded.name(node) == test_bench.graph.name(node)
