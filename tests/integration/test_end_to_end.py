"""End-to-end integration: dataset -> KG -> recommender -> summary ->
metrics, across scenarios and methods."""

import pytest

from repro.core.explanation import PathSetExplanation
from repro.core.scenarios import (
    Scenario,
    item_centric_task,
    item_group_task,
    user_centric_task,
    user_group_task,
)
from repro.core.summarizer import Summarizer
from repro.core.verbalize import verbalize_summary
from repro.graph.subgraph import is_forest
from repro.metrics import evaluate_explanation
from repro.recommenders.base import invert_recommendations


class TestFullPipeline:
    @pytest.fixture(scope="class")
    def pipeline(self, test_bench):
        per_user = test_bench.recommendations("PGPR")
        by_item = invert_recommendations(per_user, test_bench.config.k_max)
        return test_bench, per_user, by_item

    def test_user_centric_all_methods(self, pipeline):
        bench, per_user, _ = pipeline
        user = bench.eval_users[0]
        task = user_centric_task(per_user[user], 5)
        for method in ("ST", "PCST", "Union"):
            summary = Summarizer(bench.graph, method=method).summarize(task)
            report = evaluate_explanation(summary, bench.graph)
            assert report.comprehensibility > 0
            assert 0 <= report.privacy <= 1

    def test_item_centric_summary(self, pipeline):
        bench, _, by_item = pipeline
        item = next(i for i, recs in by_item.items() if len(recs) >= 2)
        task = item_centric_task(item, by_item[item])
        summary = Summarizer(bench.graph, method="ST").summarize(task)
        assert item in summary.subgraph
        assert is_forest(summary.subgraph)

    def test_user_group_summary(self, pipeline):
        bench, per_user, _ = pipeline
        group = bench.eval_users[:3]
        task = user_group_task(group, per_user, 4)
        summary = Summarizer(bench.graph, method="PCST").summarize(task)
        present = [u for u in group if u in summary.subgraph]
        assert len(present) == len(group)

    def test_item_group_summary(self, pipeline):
        bench, _, by_item = pipeline
        items = [i for i, recs in by_item.items() if recs][:3]
        task = item_group_task(items, by_item)
        summary = Summarizer(bench.graph, method="ST").summarize(task)
        assert summary.terminal_coverage == 1.0

    def test_summary_beats_baseline_size(self, pipeline):
        """The core claim end-to-end: ST summaries are smaller than the
        baseline path sets they summarize."""
        bench, per_user, _ = pipeline
        k = bench.config.k_max
        wins = 0
        for user in bench.eval_users:
            task = user_centric_task(per_user[user], k)
            baseline = PathSetExplanation(paths=task.paths)
            summary = Summarizer(bench.graph, method="ST", lam=1.0).summarize(
                task
            )
            if summary.size_in_edges < baseline.size_in_edges:
                wins += 1
        assert wins >= 0.75 * len(bench.eval_users)

    def test_verbalization_round_trip(self, pipeline):
        bench, per_user, _ = pipeline
        user = bench.eval_users[1]
        task = user_centric_task(per_user[user], 3)
        summary = Summarizer(bench.graph, method="ST").summarize(task)
        text = verbalize_summary(summary, bench.graph, include_routes=True)
        assert user in text

    def test_all_recommenders_summarizable(self, test_bench):
        for name in ("PGPR", "CAFE", "PLM", "PEARLM"):
            per_user = test_bench.recommendations(name)
            user = next(
                u for u, lst in per_user.items() if len(lst) >= 2
            )
            task = user_centric_task(per_user[user], 2)
            summary = Summarizer(test_bench.graph, method="ST").summarize(
                task
            )
            assert summary.subgraph.num_nodes >= 2

    def test_posthoc_adapter_pipeline(self, test_bench):
        """The paper's 'recommenders without paths' extension works."""
        per_user = test_bench.recommender("MF+posthoc").recommend_many(
            test_bench.eval_users[:2], 3
        )
        user = test_bench.eval_users[0]
        if len(per_user[user]) == 0:
            pytest.skip("posthoc found no reachable items at this scale")
        task = user_centric_task(per_user[user], min(3, len(per_user[user])))
        summary = Summarizer(test_bench.graph, method="ST").summarize(task)
        assert summary.terminal_coverage == 1.0


class TestCrossDataset:
    def test_lfm1m_pipeline(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.workbench import Workbench

        config = ExperimentConfig.test_scale().with_dataset("lfm1m")
        bench = Workbench.get(config)
        per_user = bench.recommendations("PGPR")
        user = next(u for u, lst in per_user.items() if len(lst) >= 2)
        task = user_centric_task(per_user[user], 2)
        summary = Summarizer(bench.graph, method="ST").summarize(task)
        assert summary.terminal_coverage == 1.0
