"""Synthetic KG generator (Table III shapes)."""

import numpy as np
import pytest

from repro.graph.generators import (
    EDGES_PER_NODE,
    SyntheticSpec,
    generate_random_kg,
    random_three_hop_paths,
    table3_specs,
)
from repro.graph.types import NodeType


class TestSpecs:
    def test_table3_five_sizes(self):
        specs = table3_specs()
        assert len(specs) == 5
        assert [s.total_nodes for s in specs] == [
            10_000, 15_000, 20_000, 25_000, 30_000,
        ]

    def test_scaling(self):
        specs = table3_specs(scale=0.01)
        assert [s.total_nodes for s in specs] == [100, 150, 200, 250, 300]

    def test_population_split_matches_paper_ratios(self):
        spec = SyntheticSpec(10_000)
        # Table III G1: 3,043 / 1,956 / 5,452 (rounded by our fractions).
        assert spec.num_users == 3043
        assert spec.num_items == 1956
        assert spec.num_external == 5001 or spec.num_external > 4900

    def test_edges_follow_density(self):
        spec = SyntheticSpec(1000)
        assert spec.num_edges == round(1000 * EDGES_PER_NODE)


class TestGeneration:
    @pytest.fixture(scope="class")
    def generated(self):
        spec = SyntheticSpec(300, edges_per_node=10.0)
        return spec, generate_random_kg(spec, np.random.default_rng(0))

    def test_population_counts(self, generated):
        spec, graph = generated
        users = sum(1 for _ in graph.nodes_of_type(NodeType.USER))
        items = sum(1 for _ in graph.nodes_of_type(NodeType.ITEM))
        assert users == spec.num_users
        assert items == spec.num_items
        assert graph.num_nodes == spec.total_nodes

    def test_edge_count_near_target(self, generated):
        spec, graph = generated
        # Duplicate draws collapse, so we land at or below the target.
        assert graph.num_edges <= spec.num_edges
        assert graph.num_edges >= 0.5 * spec.num_edges

    def test_interaction_weights_are_ratings(self, generated):
        _, graph = generated
        from repro.graph.types import EdgeType

        for edge in graph.edges():
            if edge.type is EdgeType.INTERACTION:
                assert 1.0 <= edge.weight <= 5.0
            else:
                assert edge.weight == 0.0

    def test_deterministic_given_seed(self):
        spec = SyntheticSpec(120, edges_per_node=8.0)
        a = generate_random_kg(spec, np.random.default_rng(42))
        b = generate_random_kg(spec, np.random.default_rng(42))
        assert sorted(e.key() for e in a.edges()) == sorted(
            e.key() for e in b.edges()
        )


class TestRandomPaths:
    def test_paths_are_three_hops_to_items(self):
        spec = SyntheticSpec(300, edges_per_node=12.0)
        rng = np.random.default_rng(1)
        graph = generate_random_kg(spec, rng)
        users = [f"u:{i}" for i in range(5)]
        paths = random_three_hop_paths(graph, users, paths_per_user=4, rng=rng)
        assert paths
        for path in paths:
            assert path.num_hops == 3
            assert NodeType.of(path.nodes[-1]) is NodeType.ITEM
            assert path.is_valid_in(graph)

    def test_paths_unique_per_user(self):
        spec = SyntheticSpec(300, edges_per_node=12.0)
        rng = np.random.default_rng(2)
        graph = generate_random_kg(spec, rng)
        paths = random_three_hop_paths(
            graph, ["u:0"], paths_per_user=6, rng=rng
        )
        assert len({p.nodes for p in paths}) == len(paths)
