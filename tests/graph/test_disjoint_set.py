"""Union-find behaviour."""

from repro.graph.disjoint_set import DisjointSet


class TestDisjointSet:
    def test_singletons_on_init(self):
        ds = DisjointSet(["a", "b", "c"])
        assert ds.num_sets == 3
        assert not ds.connected("a", "b")

    def test_union_merges(self):
        ds = DisjointSet(["a", "b"])
        assert ds.union("a", "b") is True
        assert ds.connected("a", "b")
        assert ds.num_sets == 1

    def test_union_idempotent(self):
        ds = DisjointSet(["a", "b"])
        ds.union("a", "b")
        assert ds.union("a", "b") is False
        assert ds.num_sets == 1

    def test_lazy_registration(self):
        ds = DisjointSet()
        assert ds.find("x") == "x"
        assert "x" in ds
        assert ds.num_sets == 1

    def test_transitive_connectivity(self):
        ds = DisjointSet()
        ds.union("a", "b")
        ds.union("b", "c")
        assert ds.connected("a", "c")

    def test_set_size_tracks_merges(self):
        ds = DisjointSet(["a", "b", "c", "d"])
        ds.union("a", "b")
        ds.union("c", "d")
        assert ds.set_size("a") == 2
        ds.union("a", "c")
        assert ds.set_size("d") == 4

    def test_sets_materialization(self):
        ds = DisjointSet(["a", "b", "c"])
        ds.union("a", "b")
        groups = sorted(ds.sets(), key=len)
        assert groups == [{"c"}, {"a", "b"}]

    def test_len_counts_elements(self):
        ds = DisjointSet(["a", "b"])
        ds.find("c")
        assert len(ds) == 3

    def test_path_compression_keeps_answers_stable(self):
        ds = DisjointSet()
        for i in range(50):
            ds.union(i, i + 1)
        root = ds.find(0)
        assert all(ds.find(i) == root for i in range(51))
