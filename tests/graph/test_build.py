"""Building G_M and the extended knowledge graph from ratings."""

import pytest

from repro.data.ratings import RatingMatrix
from repro.graph.build import build_interaction_graph, extend_with_external
from repro.graph.weights import InteractionWeights


@pytest.fixture
def tiny_ratings() -> RatingMatrix:
    return RatingMatrix.from_records(
        num_users=2,
        num_items=3,
        records=[
            (0, 0, 5.0, 100.0),
            (0, 1, 3.0, 200.0),
            (1, 1, 4.0, 300.0),
            (1, 2, 2.0, 400.0),
        ],
    )


class TestBuildInteractionGraph:
    def test_one_edge_per_rating(self, tiny_ratings):
        graph = build_interaction_graph(tiny_ratings)
        assert graph.num_edges == 4
        assert graph.num_nodes == 5

    def test_weights_follow_beta_rating(self, tiny_ratings):
        graph = build_interaction_graph(
            tiny_ratings, weights=InteractionWeights(beta_rating=2.0)
        )
        assert graph.weight("u:0", "i:0") == 10.0

    def test_recency_component(self, tiny_ratings):
        weights = InteractionWeights(
            beta_rating=0.0 if False else 1.0,
            beta_recency=1.0,
            gamma=0.001,
            now=tiny_ratings.max_timestamp,
        )
        graph = build_interaction_graph(tiny_ratings, weights=weights)
        # Most recent rating (t=400) gets the full recency bonus.
        assert graph.weight("u:1", "i:2") == pytest.approx(2.0 + 1.0)
        # Older rating decayed.
        assert graph.weight("u:0", "i:0") < 5.0 + 1.0

    def test_isolated_users_and_items_are_nodes(self):
        ratings = RatingMatrix.from_records(3, 3, [(0, 0, 5.0, 0.0)])
        graph = build_interaction_graph(ratings)
        assert graph.num_nodes == 6
        assert graph.degree("u:2") == 0


class TestExtendWithExternal:
    def test_links_added_with_zero_weight(self, tiny_ratings):
        graph = build_interaction_graph(tiny_ratings)
        extend_with_external(
            graph,
            [("i:0", "e:genre:0", "genre"), ("i:1", "e:genre:0", "genre")],
        )
        assert graph.weight("i:0", "e:genre:0") == 0.0
        assert graph.relation("i:1", "e:genre:0") == "genre"

    def test_unknown_endpoint_raises(self, tiny_ratings):
        graph = build_interaction_graph(tiny_ratings)
        with pytest.raises(KeyError):
            extend_with_external(graph, [("i:9", "e:genre:0", "genre")])

    def test_names_applied(self, tiny_ratings):
        graph = build_interaction_graph(tiny_ratings)
        extend_with_external(
            graph,
            [("i:0", "e:genre:0", "genre")],
            names={"e:genre:0": "Drama"},
        )
        assert graph.name("e:genre:0") == "Drama"

    def test_custom_external_weight(self, tiny_ratings):
        graph = build_interaction_graph(tiny_ratings)
        extend_with_external(
            graph, [("i:0", "e:genre:0", "genre")], external_weight=0.5
        )
        assert graph.weight("i:0", "e:genre:0") == 0.5
