"""Mehlhorn Steiner variant: same guarantees as Algorithm 1, one sweep."""

import numpy as np
import pytest

from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.mehlhorn import mehlhorn_steiner_tree
from repro.graph.steiner import steiner_tree
from repro.graph.subgraph import is_tree


def unit_cost(_u, _v, _w):
    return 1.0


class TestMehlhorn:
    def test_spans_terminals(self, toy_graph):
        tree = mehlhorn_steiner_tree(
            toy_graph, ["u:0", "i:1"], cost_fn=unit_cost
        )
        assert is_tree(tree)
        assert "u:0" in tree
        assert "i:1" in tree

    def test_single_terminal(self, toy_graph):
        tree = mehlhorn_steiner_tree(toy_graph, ["u:0"])
        assert tree.num_nodes == 1

    def test_single_terminal_contract_matches_steiner_tree(self, toy_graph):
        """Regression: the 1-terminal summary must be identical across
        steiner_tree and mehlhorn_steiner_tree on both engines — one
        bare node, display name preserved (multi-terminal trees keep
        names via edge_subgraph; the bare-node path used to drop them).
        """
        toy_graph.set_name("u:0", "Alice")
        frozen = toy_graph.freeze()
        trees = [
            steiner_tree(toy_graph, ["u:0"]),
            steiner_tree(toy_graph, ["u:0"], frozen=frozen),
            mehlhorn_steiner_tree(toy_graph, ["u:0"]),
            mehlhorn_steiner_tree(toy_graph, ["u:0"], frozen=frozen),
        ]
        for tree in trees:
            assert sorted(tree.nodes()) == ["u:0"]
            assert tree.num_edges == 0
            assert tree.name("u:0") == "Alice"

    def test_two_terminal_contract_on_both_engines(self, toy_graph):
        """Regression: 2 terminals — the shortest connecting path, with
        stored weights and names intact, identical on both engines."""
        toy_graph.set_name("i:1", "The Movie")
        frozen = toy_graph.freeze()
        for tree in (
            mehlhorn_steiner_tree(toy_graph, ["u:1", "i:1"], cost_fn=unit_cost),
            mehlhorn_steiner_tree(
                toy_graph,
                ["u:1", "i:1"],
                cost_fn=unit_cost,
                frozen=frozen,
                slot_costs=frozen.costs_from(unit_cost),
            ),
            steiner_tree(toy_graph, ["u:1", "i:1"], cost_fn=unit_cost),
        ):
            assert is_tree(tree)
            assert sorted(tree.nodes()) == ["i:1", "u:1"]
            assert tree.weight("u:1", "i:1") == 4.0
            assert tree.name("i:1") == "The Movie"

    def test_empty_terminals(self, toy_graph):
        assert mehlhorn_steiner_tree(toy_graph, []).num_nodes == 0

    def test_unknown_terminal_raises(self, toy_graph):
        with pytest.raises(KeyError):
            mehlhorn_steiner_tree(toy_graph, ["u:0", "i:77"])

    def test_disconnected_terminals_raise(self):
        graph = KnowledgeGraph()
        graph.add_edge("u:0", "i:0")
        graph.add_edge("u:1", "i:1")
        with pytest.raises(ValueError):
            mehlhorn_steiner_tree(graph, ["u:0", "u:1"], cost_fn=unit_cost)

    def test_leaves_are_terminals(self, small_kg):
        terminals = ["u:0", "i:1", "i:3", "i:5"]
        tree = mehlhorn_steiner_tree(small_kg, terminals, cost_fn=unit_cost)
        for node in tree.nodes():
            if tree.degree(node) <= 1:
                assert node in terminals

    def test_cost_within_2x_of_kmb(self, small_kg):
        """Both are 2-approximations of the same optimum, so each is
        within 2x of the other."""
        rng = np.random.default_rng(17)
        nodes = sorted(small_kg.nodes())
        for _ in range(4):
            picks = rng.choice(len(nodes), size=6, replace=False)
            terminals = [nodes[int(p)] for p in picks]
            ours = mehlhorn_steiner_tree(
                small_kg, terminals, cost_fn=unit_cost
            )
            kmb = steiner_tree(small_kg, terminals, cost_fn=unit_cost)
            assert ours.num_edges <= 2 * max(1, kmb.num_edges)
            assert kmb.num_edges <= 2 * max(1, ours.num_edges)

    def test_faster_than_kmb_on_many_terminals(self, small_kg):
        """The reason it exists: one sweep beats |T| sweeps."""
        import time

        terminals = [
            n for n in sorted(small_kg.nodes()) if n.startswith("i:")
        ][:40]

        start = time.perf_counter()
        mehlhorn_steiner_tree(small_kg, terminals, cost_fn=unit_cost)
        mehlhorn_time = time.perf_counter() - start

        start = time.perf_counter()
        steiner_tree(small_kg, terminals, cost_fn=unit_cost)
        kmb_time = time.perf_counter() - start
        assert mehlhorn_time < kmb_time

    def test_via_summarizer_st_fast(self, small_kg, test_bench):
        from repro.core.scenarios import user_centric_task
        from repro.core.summarizer import Summarizer

        per_user = test_bench.recommendations("PGPR")
        user = test_bench.eval_users[0]
        task = user_centric_task(per_user[user], 4)
        summary = Summarizer(test_bench.graph, method="ST-fast").summarize(
            task
        )
        assert summary.params["algorithm"] == "mehlhorn"
        assert summary.terminal_coverage == 1.0

    def test_st_fast_engines_agree(self, test_bench):
        """The frozen ST-fast engine is bit-identical to the dict one."""
        from repro.core.scenarios import Scenario
        from repro.core.summarizer import Summarizer

        tasks = list(
            test_bench.tasks(Scenario.USER_CENTRIC, "PGPR", 4).values()
        )
        frozen_engine = Summarizer(test_bench.graph, method="ST-fast")
        dict_engine = Summarizer(
            test_bench.graph, method="ST-fast", engine="dict"
        )
        for task in tasks:
            a = frozen_engine.summarize(task).subgraph
            b = dict_engine.summarize(task).subgraph
            assert sorted(a.nodes()) == sorted(b.nodes())
            assert sorted(
                (e.source, e.target, e.weight) for e in a.edges()
            ) == sorted((e.source, e.target, e.weight) for e in b.edges())
