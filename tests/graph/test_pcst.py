"""Prize-collecting Steiner tree: growth, pruning, relaxation."""

import pytest

from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.pcst import grow_prune_pcst, paper_pcst
from repro.graph.subgraph import is_forest, is_weakly_connected


class TestPaperPCST:
    def test_connects_reachable_terminals(self, toy_graph):
        prizes = {"u:0": 1.0, "i:1": 1.0}
        forest = paper_pcst(toy_graph, prizes)
        assert "u:0" in forest
        assert "i:1" in forest
        assert is_weakly_connected(forest)
        assert is_forest(forest)

    def test_empty_prizes(self, toy_graph):
        forest = paper_pcst(toy_graph, {})
        assert forest.num_nodes == 0

    def test_unknown_terminal_ignored(self, toy_graph):
        forest = paper_pcst(toy_graph, {"u:99": 1.0, "u:0": 1.0})
        assert "u:0" in forest
        assert "u:99" not in forest

    def test_single_terminal(self, toy_graph):
        forest = paper_pcst(toy_graph, {"u:0": 1.0})
        assert "u:0" in forest
        assert forest.num_edges == 0

    def test_disconnected_terminal_forfeited(self):
        graph = KnowledgeGraph()
        graph.add_edge("u:0", "i:0")
        graph.add_edge("u:1", "i:1")
        forest = paper_pcst(graph, {"u:0": 1.0, "u:1": 1.0, "i:0": 1.0})
        # Both components contain a seed, so both survive; the relaxation
        # just never connects them.
        assert is_forest(forest)
        assert not is_weakly_connected(forest) or forest.num_nodes <= 2

    def test_leaf_pruning_removes_non_terminal_leaves(self, small_kg):
        terminals = ["u:0", "i:1", "i:3"]
        pruned = paper_pcst(
            small_kg,
            {t: 1.0 for t in terminals},
            prune_zero_prize_leaves=True,
        )
        for node in pruned.nodes():
            if pruned.degree(node) <= 1:
                assert node in terminals

    def test_unpruned_is_superset_of_pruned(self, small_kg):
        terminals = ["u:0", "i:1", "i:3"]
        prizes = {t: 1.0 for t in terminals}
        full = paper_pcst(small_kg, prizes)
        pruned = paper_pcst(small_kg, prizes, prune_zero_prize_leaves=True)
        assert set(pruned.nodes()) <= set(full.nodes())

    def test_explicit_seeds_override_prizes(self, toy_graph):
        # Everything has a small prize, but only u:0/i:1 seed the growth.
        prizes = {n: 0.1 for n in toy_graph.nodes()}
        prizes["u:0"] = prizes["i:1"] = 1.0
        forest = paper_pcst(toy_graph, prizes, seeds=["u:0", "i:1"])
        assert "u:0" in forest
        assert "i:1" in forest

    def test_scales_with_terminals(self, small_kg):
        terminals = [f"i:{i}" for i in range(10) if f"i:{i}" in small_kg]
        forest = paper_pcst(small_kg, {t: 1.0 for t in terminals})
        present = [t for t in terminals if t in forest]
        assert len(present) == len(terminals)
        assert is_forest(forest)


class TestFrozenEngine:
    """The CSR growth pass must match the dict oracle on fixed graphs
    (random-graph parity lives in tests/properties/test_engine_parity.py)."""

    @staticmethod
    def canonical(graph):
        return (
            sorted(graph.nodes()),
            sorted((e.source, e.target, e.weight) for e in graph.edges()),
        )

    def test_matches_dict_on_toy_graph(self, toy_graph):
        prizes = {"u:0": 1.0, "i:1": 1.0}
        frozen = toy_graph.freeze()
        assert self.canonical(
            paper_pcst(toy_graph, prizes)
        ) == self.canonical(paper_pcst(toy_graph, prizes, frozen=frozen))

    def test_matches_dict_on_small_kg(self, small_kg):
        terminals = sorted(small_kg.nodes())[:6]
        prizes = {t: 1.0 for t in terminals}
        frozen = small_kg.freeze()
        for prune in (False, True):
            dict_forest = paper_pcst(
                small_kg, prizes, prune_zero_prize_leaves=prune,
                seeds=terminals,
            )
            csr_forest = paper_pcst(
                small_kg, prizes, prune_zero_prize_leaves=prune,
                seeds=terminals, frozen=frozen,
            )
            assert self.canonical(dict_forest) == self.canonical(csr_forest)

    def test_stale_frozen_view_rejected(self, toy_graph):
        frozen = toy_graph.freeze()
        toy_graph.add_edge("u:0", "i:1", 2.0)
        with pytest.raises(ValueError, match="stale"):
            paper_pcst(toy_graph, {"u:0": 1.0, "i:1": 1.0}, frozen=frozen)

    def test_lone_seed_matches_dict(self, toy_graph):
        frozen = toy_graph.freeze()
        a = paper_pcst(toy_graph, {"u:0": 1.0})
        b = paper_pcst(toy_graph, {"u:0": 1.0}, frozen=frozen)
        assert self.canonical(a) == self.canonical(b)
        assert b.num_edges == 0 and "u:0" in b

    def test_duplicate_seeds_raise_on_both_engines(self, toy_graph):
        """Parity includes the error contract: the dict heap rejects a
        duplicate seed push, so the indexed growth must too."""
        frozen = toy_graph.freeze()
        prizes = {"u:0": 1.0, "i:1": 1.0}
        seeds = ["u:0", "i:1", "u:0"]
        with pytest.raises(KeyError, match="already in heap"):
            paper_pcst(toy_graph, prizes, seeds=seeds)
        with pytest.raises(KeyError, match="already in heap"):
            paper_pcst(toy_graph, prizes, seeds=seeds, frozen=frozen)


class TestGrowPrune:
    def test_strong_pruning_shrinks(self, small_kg):
        terminals = ["u:0", "i:1", "i:3", "i:5"]
        prizes = {t: 1.0 for t in terminals}
        grown = paper_pcst(small_kg, prizes)
        pruned = grow_prune_pcst(small_kg, prizes)
        assert pruned.num_nodes <= grown.num_nodes

    def test_unit_prizes_unit_costs_collapse(self, small_kg):
        """With p=1 terminals and unit costs, connecting any two terminals
        through >=1 hops never pays; strong pruning keeps singletons."""
        terminals = ["u:0", "i:1"]
        pruned = grow_prune_pcst(small_kg, {t: 1.0 for t in terminals})
        assert pruned.num_edges <= 1

    def test_generous_prizes_keep_connections(self, toy_graph):
        prizes = {"u:0": 10.0, "i:1": 10.0}
        pruned = grow_prune_pcst(toy_graph, prizes)
        assert "u:0" in pruned
        assert "i:1" in pruned
        assert is_weakly_connected(pruned)

    def test_empty_prizes(self, toy_graph):
        assert grow_prune_pcst(toy_graph, {}).num_nodes == 0
