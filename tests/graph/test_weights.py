"""Interaction weight function w_M and the recency decay."""

import math

import pytest

from repro.graph.weights import InteractionWeights, recency_score


class TestRecencyScore:
    def test_now_scores_one(self):
        assert recency_score(100.0, now=100.0, gamma=0.1) == 1.0

    def test_decays_with_age(self):
        newer = recency_score(90.0, now=100.0, gamma=0.1)
        older = recency_score(50.0, now=100.0, gamma=0.1)
        assert 0 < older < newer < 1

    def test_exact_exponential(self):
        assert recency_score(0.0, now=10.0, gamma=0.2) == pytest.approx(
            math.exp(-2.0)
        )

    def test_future_timestamp_clamped(self):
        assert recency_score(200.0, now=100.0, gamma=0.1) == 1.0

    def test_negative_gamma_rejected(self):
        with pytest.raises(ValueError):
            recency_score(0.0, now=1.0, gamma=-0.1)

    def test_zero_gamma_ignores_age(self):
        assert recency_score(0.0, now=1e9, gamma=0.0) == 1.0


class TestInteractionWeights:
    def test_rating_only(self):
        weights = InteractionWeights.rating_only()
        assert weights.weight(4.0, 123.0) == 4.0

    def test_beta_rating_scales(self):
        weights = InteractionWeights.rating_only(beta_rating=0.5)
        assert weights.weight(4.0, 0.0) == 2.0

    def test_mix_combines_terms(self):
        weights = InteractionWeights.mix(
            beta_rating=1.0, beta_recency=2.0, gamma=0.0, now=0.0
        )
        assert weights.weight(3.0, 0.0) == 3.0 + 2.0

    def test_recency_dominant(self):
        weights = InteractionWeights.mix(
            beta_rating=0.0, beta_recency=1.0, gamma=0.1, now=10.0
        )
        assert weights.weight(5.0, 10.0) == pytest.approx(1.0)
        assert weights.weight(5.0, 0.0) == pytest.approx(math.exp(-1.0))

    def test_negative_betas_rejected(self):
        with pytest.raises(ValueError):
            InteractionWeights(beta_rating=-1.0)

    def test_all_zero_betas_rejected(self):
        with pytest.raises(ValueError):
            InteractionWeights(beta_rating=0.0, beta_recency=0.0)

    def test_higher_rating_heavier(self):
        weights = InteractionWeights.rating_only()
        assert weights.weight(5.0, 0.0) > weights.weight(1.0, 0.0)
