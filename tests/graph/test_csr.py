"""FrozenGraph (CSR backend) unit tests: interning, slicing, staleness."""

import pytest

from repro.graph.csr import FrozenCosts, FrozenGraph
from repro.graph.knowledge_graph import KnowledgeGraph


class TestConstruction:
    def test_interning_roundtrip(self, toy_graph):
        frozen = toy_graph.freeze()
        assert frozen.num_nodes == toy_graph.num_nodes
        assert frozen.num_edges == toy_graph.num_edges
        for node in toy_graph.nodes():
            assert node in frozen
            assert frozen.id_of(frozen.index_of(node)) == node
        assert "u:999" not in frozen
        with pytest.raises(KeyError):
            frozen.index_of("u:999")

    def test_rows_match_adjacency_order(self, toy_graph):
        """CSR rows preserve dict insertion order — the parity keystone."""
        frozen = toy_graph.freeze()
        for node in toy_graph.nodes():
            expected = list(toy_graph.neighbors(node).items())
            row = [
                (frozen.id_of(neighbor), weight)
                for neighbor, weight in frozen.neighbors(frozen.index_of(node))
            ]
            assert row == expected

    def test_degree_matches(self, toy_graph):
        frozen = toy_graph.freeze()
        for node in toy_graph.nodes():
            assert frozen.degree(frozen.index_of(node)) == toy_graph.degree(
                node
            )

    def test_offsets_cover_all_slots(self, toy_graph):
        frozen = toy_graph.freeze()
        assert frozen.offsets[0] == 0
        assert frozen.offsets[-1] == len(frozen.targets)
        assert len(frozen.targets) == 2 * toy_graph.num_edges
        assert len(frozen.weights) == len(frozen.targets)

    def test_empty_graph(self):
        frozen = KnowledgeGraph().freeze()
        assert frozen.num_nodes == 0
        assert frozen.num_edges == 0


class TestEdgeSlots:
    def test_edge_slot_lookup(self, toy_graph):
        frozen = toy_graph.freeze()
        slot = frozen.edge_slot("u:0", "i:0")
        assert slot is not None
        assert frozen.ids[frozen.targets[slot]] == "i:0"
        assert frozen.weights[slot] == 5.0
        reverse = frozen.edge_slot("i:0", "u:0")
        assert reverse is not None and reverse != slot

    def test_edge_slot_absent(self, toy_graph):
        frozen = toy_graph.freeze()
        assert frozen.edge_slot("u:0", "u:1") is None
        assert frozen.edge_slot("u:0", "x:nope") is None


class TestCosts:
    def test_unit_costs_fresh_copies(self, toy_graph):
        frozen = toy_graph.freeze()
        first = frozen.unit_costs()
        first[0] = 99.0
        assert frozen.unit_costs()[0] == 1.0

    def test_costs_from_applies_fn(self, toy_graph):
        frozen = toy_graph.freeze()
        costs = frozen.costs_from(lambda u, v, w: w + 1.0)
        assert isinstance(costs, FrozenCosts)
        slot = frozen.edge_slot("u:0", "i:0")
        assert costs.slots[slot] == 6.0

    def test_costs_from_rejects_negative(self, toy_graph):
        frozen = toy_graph.freeze()
        with pytest.raises(ValueError, match="negative cost"):
            frozen.costs_from(lambda u, v, w: -1.0)

    def test_stored_costs_signature_tracks_version(self, toy_graph):
        first = toy_graph.freeze().stored_costs().signature
        toy_graph.set_weight("u:0", "i:0", 2.0)
        assert toy_graph.freeze().stored_costs().signature != first


class TestFreezeCaching:
    def test_freeze_is_cached(self, toy_graph):
        assert toy_graph.freeze() is toy_graph.freeze()

    def test_mutation_rebuilds(self):
        graph = KnowledgeGraph()
        graph.add_edge("u:0", "i:0", 3.0)
        frozen = graph.freeze()
        assert not frozen.is_stale()
        graph.add_edge("u:0", "i:1", 1.0)
        assert frozen.is_stale()
        refrozen = graph.freeze()
        assert refrozen is not frozen
        assert not refrozen.is_stale()
        assert refrozen.num_edges == 2

    def test_every_mutator_bumps_version(self):
        graph = KnowledgeGraph()
        seen = {graph.version}

        def check(action):
            action()
            assert graph.version not in seen, "mutator did not bump version"
            seen.add(graph.version)

        check(lambda: graph.add_node("u:0"))
        check(lambda: graph.add_edge("u:0", "i:0", 2.0))
        check(lambda: graph.add_edge("i:0", "e:genre:0", 0.0, "genre"))
        check(lambda: graph.set_weight("u:0", "i:0", 4.0))
        check(lambda: graph.remove_edge("i:0", "e:genre:0"))
        check(lambda: graph.remove_node("u:0"))

    def test_add_existing_node_keeps_version(self):
        graph = KnowledgeGraph()
        graph.add_edge("u:0", "i:0")
        version = graph.version
        graph.add_node("u:0")
        assert graph.version == version


class TestInterop:
    def test_to_numpy_views(self, toy_graph):
        pytest.importorskip("numpy")
        frozen = toy_graph.freeze()
        offsets, targets, weights = frozen.to_numpy()
        assert list(offsets) == list(frozen.offsets)
        assert list(targets) == list(frozen.targets)
        assert list(weights) == list(frozen.weights)

    def test_from_knowledge_graph_direct(self, toy_graph):
        frozen = FrozenGraph.from_knowledge_graph(toy_graph)
        assert frozen.version == toy_graph.version
