"""Graph / path serialization round trips."""

import pytest

from repro.graph.io import (
    graph_from_dict,
    graph_to_dict,
    load_graph_json,
    load_graph_tsv,
    load_paths_jsonl,
    save_graph_json,
    save_graph_tsv,
    save_paths_jsonl,
)
from repro.graph.paths import Path


def graphs_equal(a, b) -> bool:
    if set(a.nodes()) != set(b.nodes()):
        return False
    edges_a = {(e.key(), e.weight, e.relation) for e in a.edges()}
    edges_b = {(e.key(), e.weight, e.relation) for e in b.edges()}
    return edges_a == edges_b


class TestJsonRoundTrip:
    def test_dict_round_trip(self, toy_graph):
        toy_graph.set_name("u:0", "Alice")
        clone = graph_from_dict(graph_to_dict(toy_graph))
        assert graphs_equal(toy_graph, clone)
        assert clone.name("u:0") == "Alice"

    def test_file_round_trip(self, toy_graph, tmp_path):
        target = tmp_path / "graph.json"
        save_graph_json(toy_graph, target)
        assert graphs_equal(toy_graph, load_graph_json(target))

    def test_isolated_nodes_preserved(self, tmp_path):
        from repro.graph.knowledge_graph import KnowledgeGraph

        graph = KnowledgeGraph()
        graph.add_edge("u:0", "i:0")
        graph.add_node("i:9")
        target = tmp_path / "graph.json"
        save_graph_json(graph, target)
        assert "i:9" in load_graph_json(target)

    def test_version_checked(self):
        with pytest.raises(ValueError):
            graph_from_dict({"version": 999, "nodes": [], "edges": []})


class TestTsvRoundTrip:
    def test_file_round_trip(self, toy_graph, tmp_path):
        target = tmp_path / "graph.tsv"
        save_graph_tsv(toy_graph, target)
        assert graphs_equal(toy_graph, load_graph_tsv(target))

    def test_header_required(self, tmp_path):
        target = tmp_path / "bad.tsv"
        target.write_text("u:0\ti:0\t1.0\t\n")
        with pytest.raises(ValueError):
            load_graph_tsv(target)

    def test_malformed_row_rejected(self, tmp_path):
        target = tmp_path / "bad.tsv"
        target.write_text(
            "source\ttarget\tweight\trelation\nu:0\ti:0\n"
        )
        with pytest.raises(ValueError):
            load_graph_tsv(target)


class TestPathsJsonl:
    def test_round_trip(self, tmp_path):
        paths = [
            Path(nodes=("u:0", "i:0", "e:g:0", "i:1"), score=0.7),
            Path(nodes=("u:1", "i:2"), score=0.2),
        ]
        target = tmp_path / "paths.jsonl"
        save_paths_jsonl(paths, target)
        loaded = load_paths_jsonl(target)
        assert loaded == paths

    def test_empty_list(self, tmp_path):
        target = tmp_path / "paths.jsonl"
        save_paths_jsonl([], target)
        assert load_paths_jsonl(target) == []
