"""Addressable heap behaviour."""

import pytest

from repro.graph.heap import AddressableHeap


class TestAddressableHeap:
    def test_pop_order(self):
        heap = AddressableHeap()
        for key, priority in [("a", 3.0), ("b", 1.0), ("c", 2.0)]:
            heap.push(key, priority)
        assert heap.pop_min() == ("b", 1.0)
        assert heap.pop_min() == ("c", 2.0)
        assert heap.pop_min() == ("a", 3.0)

    def test_duplicate_push_rejected(self):
        heap = AddressableHeap()
        heap.push("a", 1.0)
        with pytest.raises(KeyError):
            heap.push("a", 2.0)

    def test_update_decreases(self):
        heap = AddressableHeap()
        heap.push("a", 5.0)
        heap.push("b", 1.0)
        assert heap.update("a", 0.5) is True
        assert heap.pop_min() == ("a", 0.5)

    def test_update_increases(self):
        heap = AddressableHeap()
        heap.push("a", 1.0)
        heap.push("b", 2.0)
        heap.update("a", 3.0)
        assert heap.pop_min() == ("b", 2.0)

    def test_update_noop_on_equal(self):
        heap = AddressableHeap()
        heap.push("a", 1.0)
        assert heap.update("a", 1.0) is False

    def test_update_inserts_missing(self):
        heap = AddressableHeap()
        assert heap.update("a", 1.0) is True
        assert "a" in heap

    def test_decrease_if_lower(self):
        heap = AddressableHeap()
        heap.push("a", 2.0)
        assert heap.decrease_if_lower("a", 3.0) is False
        assert heap.decrease_if_lower("a", 1.0) is True
        assert heap.priority("a") == 1.0

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            AddressableHeap().pop_min()

    def test_peek_does_not_remove(self):
        heap = AddressableHeap()
        heap.push("a", 1.0)
        assert heap.peek_min() == ("a", 1.0)
        assert len(heap) == 1

    def test_contains_and_len(self):
        heap = AddressableHeap()
        heap.push("a", 1.0)
        heap.push("b", 2.0)
        assert "a" in heap
        assert len(heap) == 2
        heap.pop_min()
        assert "a" not in heap
        assert bool(heap)

    def test_priority_missing_raises(self):
        with pytest.raises(KeyError):
            AddressableHeap().priority("nope")

    def test_many_operations_stay_sorted(self):
        heap = AddressableHeap()
        values = [(f"k{i}", float((i * 37) % 101)) for i in range(100)]
        for key, priority in values:
            heap.push(key, priority)
        for key, _ in values[:30]:
            heap.update(key, heap.priority(key) / 2.0)
        drained = []
        while heap:
            drained.append(heap.pop_min()[1])
        assert drained == sorted(drained)
        assert len(drained) == 100
