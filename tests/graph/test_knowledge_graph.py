"""KnowledgeGraph structure, mutation and statistics."""

import math

import pytest

from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.types import NodeType


class TestConstruction:
    def test_add_edge_creates_nodes(self):
        graph = KnowledgeGraph()
        graph.add_edge("u:0", "i:0", 2.0)
        assert "u:0" in graph
        assert "i:0" in graph
        assert graph.num_nodes == 2
        assert graph.num_edges == 1

    def test_edge_is_symmetric(self):
        graph = KnowledgeGraph()
        graph.add_edge("u:0", "i:0", 2.0)
        assert graph.weight("u:0", "i:0") == 2.0
        assert graph.weight("i:0", "u:0") == 2.0

    def test_overwrite_edge_does_not_double_count(self):
        graph = KnowledgeGraph()
        graph.add_edge("u:0", "i:0", 2.0)
        graph.add_edge("u:0", "i:0", 4.0)
        assert graph.num_edges == 1
        assert graph.weight("u:0", "i:0") == 4.0

    def test_self_loop_rejected(self):
        graph = KnowledgeGraph()
        with pytest.raises(ValueError):
            graph.add_edge("u:0", "u:0")

    def test_incompatible_populations_rejected(self):
        graph = KnowledgeGraph()
        with pytest.raises(ValueError):
            graph.add_edge("u:0", "u:1")

    def test_relation_stored_for_knowledge_edge(self):
        graph = KnowledgeGraph()
        graph.add_edge("i:0", "e:genre:0", 0.0, "genre")
        assert graph.relation("i:0", "e:genre:0") == "genre"
        assert graph.relation("e:genre:0", "i:0") == "genre"

    def test_from_edges(self):
        graph = KnowledgeGraph.from_edges(
            [("u:0", "i:0", 1.0), ("i:0", "e:genre:0", 0.0, "genre")]
        )
        assert graph.num_edges == 2


class TestMutation:
    def test_remove_edge(self, toy_graph):
        toy_graph.remove_edge("u:0", "i:0")
        assert not toy_graph.has_edge("u:0", "i:0")
        assert toy_graph.num_edges == 6

    def test_remove_missing_edge_raises(self, toy_graph):
        with pytest.raises(KeyError):
            toy_graph.remove_edge("u:0", "i:1")

    def test_remove_node_drops_incident_edges(self, toy_graph):
        toy_graph.remove_node("i:1")
        assert "i:1" not in toy_graph
        assert not toy_graph.has_edge("u:1", "i:1")
        assert toy_graph.num_edges == 4

    def test_set_weight(self, toy_graph):
        toy_graph.set_weight("u:0", "i:0", 1.5)
        assert toy_graph.weight("i:0", "u:0") == 1.5

    def test_set_weight_missing_edge_raises(self, toy_graph):
        with pytest.raises(KeyError):
            toy_graph.set_weight("u:0", "i:1", 1.0)


class TestQueries:
    def test_nodes_of_type(self, toy_graph):
        users = set(toy_graph.nodes_of_type(NodeType.USER))
        assert users == {"u:0", "u:1"}

    def test_edges_iterates_each_once(self, toy_graph):
        edges = list(toy_graph.edges())
        assert len(edges) == toy_graph.num_edges
        keys = {e.key() for e in edges}
        assert len(keys) == len(edges)

    def test_degree(self, toy_graph):
        assert toy_graph.degree("i:1") == 3  # u:1, genre, director

    def test_names_default_to_id(self, toy_graph):
        assert toy_graph.name("u:0") == "u:0"
        toy_graph.set_name("u:0", "Alice")
        assert toy_graph.name("u:0") == "Alice"

    def test_set_name_unknown_node_raises(self, toy_graph):
        with pytest.raises(KeyError):
            toy_graph.set_name("u:99", "ghost")


class TestDerivedViews:
    def test_copy_is_independent(self, toy_graph):
        clone = toy_graph.copy()
        clone.remove_edge("u:0", "i:0")
        assert toy_graph.has_edge("u:0", "i:0")
        assert not clone.has_edge("u:0", "i:0")

    def test_reweighted_applies_function(self, toy_graph):
        doubled = toy_graph.reweighted(lambda e: e.weight * 2)
        assert doubled.weight("u:0", "i:0") == 10.0
        assert toy_graph.weight("u:0", "i:0") == 5.0

    def test_stats_counts_populations(self, toy_graph):
        stats = toy_graph.stats()
        assert stats.num_users == 2
        assert stats.num_items == 3
        assert stats.num_external == 2
        assert stats.num_interaction_edges == 3
        assert stats.num_knowledge_edges == 4

    def test_stats_path_metrics(self, toy_graph):
        stats = toy_graph.stats()
        assert stats.diameter == 4  # u:0 .. u:1 via genre
        assert stats.average_path_length > 1.0
        assert not math.isnan(stats.average_path_length)

    def test_stats_density(self, toy_graph):
        stats = toy_graph.stats()
        n = toy_graph.num_nodes
        assert stats.density == pytest.approx(
            2 * toy_graph.num_edges / (n * (n - 1))
        )

    def test_sampled_stats_close_to_exact(self, small_kg):
        import numpy as np

        exact = small_kg.stats()
        sampled = small_kg.stats(
            approx_pairs=64, rng=np.random.default_rng(0)
        )
        assert sampled.diameter <= exact.diameter
        assert sampled.average_path_length == pytest.approx(
            exact.average_path_length, rel=0.2
        )
