"""Shared-memory graph plane: export/attach roundtrip, lifecycle, spawn."""

import multiprocessing
import os

import pytest

from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.csr import FrozenGraph
from repro.graph.shared import (
    attach_frozen,
    attach_knowledge_graph,
    detach_all,
    export_frozen,
)
from repro.graph.shortest_paths import dijkstra, dijkstra_frozen


def _shm_tokens() -> set[str]:
    if not os.path.isdir("/dev/shm"):  # macOS/Windows back shm elsewhere
        pytest.skip("no /dev/shm on this platform")
    return {n for n in os.listdir("/dev/shm") if n.startswith("rxg")}


@pytest.fixture()
def graph() -> KnowledgeGraph:
    graph = KnowledgeGraph()
    graph.add_edge("u:0", "i:0", 5.0)
    graph.add_edge("u:0", "i:2", 3.0)
    graph.add_edge("u:1", "i:1", 4.0)
    graph.add_edge("i:0", "e:genre:0", 0.0, "genre")
    graph.add_edge("i:1", "e:genre:0", 0.0, "genre")
    graph.add_edge("i:2", "e:director:0", 0.0, "director")
    graph.set_name("i:0", "Movie Zero")
    return graph


@pytest.fixture()
def export(graph):
    export = graph.freeze().to_shared()
    yield export
    detach_all()
    export.close()
    export.unlink()


class TestRoundtrip:
    def test_attached_frozen_matches_source(self, graph, export):
        frozen = graph.freeze()
        attached = FrozenGraph.from_shared(export.handle)
        assert attached.ids == frozen.ids
        assert list(attached.offsets) == list(frozen.offsets)
        assert list(attached.targets) == list(frozen.targets)
        assert list(attached.weights) == list(frozen.weights)
        assert attached.version == frozen.version
        assert attached.string_ranks() == frozen.string_ranks()
        assert not attached.is_stale()

    def test_attached_traversal_is_bit_identical(self, graph, export):
        attached = FrozenGraph.from_shared(export.handle)
        dict_dist, dict_prev = dijkstra(graph, "u:0")
        dist, prev = dijkstra_frozen(attached, "u:0")
        assert dist == dict_dist
        assert prev == dict_prev

    def test_rebuilt_knowledge_graph_is_equivalent(self, graph, export):
        rebuilt = attach_knowledge_graph(export.handle)
        assert list(rebuilt.nodes()) == list(graph.nodes())
        for node in graph.nodes():
            assert dict(rebuilt.neighbors(node)) == dict(
                graph.neighbors(node)
            )
        assert rebuilt.num_edges == graph.num_edges
        assert rebuilt.relation("i:0", "e:genre:0") == "genre"
        assert rebuilt.name("i:0") == "Movie Zero"
        assert rebuilt.version == graph.version

    def test_rebuilt_graph_freeze_is_prebound(self, graph, export):
        rebuilt = attach_knowledge_graph(export.handle)
        frozen = rebuilt.freeze()
        assert frozen is rebuilt.freeze()  # no recompilation
        assert isinstance(frozen.offsets, memoryview)

    def test_detached_export_has_empty_side_tables(self, graph):
        frozen = graph.freeze()
        detached = FrozenGraph(
            frozen.ids,
            {n: i for i, n in enumerate(frozen.ids)},
            frozen.offsets,
            frozen.targets,
            frozen.weights,
            frozen.version,
        )
        with export_frozen(detached) as export:
            rebuilt = attach_knowledge_graph(export.handle)
            assert rebuilt.relation("i:0", "e:genre:0") == ""
            assert rebuilt.name("i:0") == "i:0"
            detach_all()


class TestLifecycle:
    def test_unlink_removes_blocks(self, graph):
        before = _shm_tokens()
        export = graph.freeze().to_shared()
        created = _shm_tokens() - before
        assert len(created) == 5  # offsets/targets/weights/ranks/meta
        export.close()
        export.unlink()
        assert _shm_tokens() == before

    def test_context_manager_unlinks_on_error(self, graph):
        before = _shm_tokens()
        with pytest.raises(RuntimeError):
            with graph.freeze().to_shared():
                raise RuntimeError("boom")
        assert _shm_tokens() == before

    def test_unlink_is_idempotent(self, graph):
        export = graph.freeze().to_shared()
        export.close()
        export.unlink()
        export.unlink()  # second unlink must not raise

    def test_attach_after_unlink_raises(self, graph):
        export = graph.freeze().to_shared()
        export.close()
        export.unlink()
        with pytest.raises(FileNotFoundError):
            attach_frozen(export.handle)


def _spawn_probe(handle, queue) -> None:
    """Spawn-target: attach, traverse, ship the results back."""
    from repro.graph.shared import attach_knowledge_graph
    from repro.graph.shortest_paths import dijkstra_frozen

    rebuilt = attach_knowledge_graph(handle)
    dist, prev = dijkstra_frozen(rebuilt.freeze(), "u:0")
    queue.put(
        (
            dist,
            prev,
            rebuilt.relation("i:0", "e:genre:0"),
            rebuilt.name("i:0"),
        )
    )


class TestSpawnSmoke:
    def test_spawned_process_attaches_and_detaches(self, graph):
        """The full worker lifecycle under the spawn start method:
        attach by name, traverse bit-identically, exit without leaking
        or unlinking blocks the parent still owns."""
        before = _shm_tokens()
        context = multiprocessing.get_context("spawn")
        export = graph.freeze().to_shared()
        try:
            queue = context.Queue()
            child = context.Process(
                target=_spawn_probe, args=(export.handle, queue)
            )
            child.start()
            dist, prev, relation, name = queue.get(timeout=120)
            child.join(timeout=120)
            assert child.exitcode == 0
            expected_dist, expected_prev = dijkstra(graph, "u:0")
            assert dist == expected_dist
            assert prev == expected_prev
            assert relation == "genre"
            assert name == "Movie Zero"
            # The child's exit must not have unlinked the blocks.
            attached = FrozenGraph.from_shared(export.handle)
            assert attached.ids == graph.freeze().ids
            detach_all()
        finally:
            export.close()
            export.unlink()
        assert _shm_tokens() == before
