"""Steiner tree: correctness, approximation quality, edge cases."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.steiner import steiner_tree
from repro.graph.subgraph import is_tree


def unit_cost(_u, _v, _w):
    return 1.0


class TestSteinerBasics:
    def test_spans_terminals(self, toy_graph):
        tree = steiner_tree(toy_graph, ["u:0", "i:1"], cost_fn=unit_cost)
        assert "u:0" in tree
        assert "i:1" in tree
        assert is_tree(tree)

    def test_single_terminal(self, toy_graph):
        tree = steiner_tree(toy_graph, ["u:0"])
        assert tree.num_nodes == 1
        assert tree.num_edges == 0

    def test_duplicate_terminals_collapse(self, toy_graph):
        tree = steiner_tree(
            toy_graph, ["u:0", "i:0", "u:0"], cost_fn=unit_cost
        )
        assert is_tree(tree)
        assert tree.num_edges == 1

    def test_empty_terminals(self, toy_graph):
        tree = steiner_tree(toy_graph, [])
        assert tree.num_nodes == 0

    def test_unknown_terminal_raises(self, toy_graph):
        with pytest.raises(KeyError):
            steiner_tree(toy_graph, ["u:0", "i:77"])

    def test_disconnected_terminals_raise(self):
        graph = KnowledgeGraph()
        graph.add_edge("u:0", "i:0")
        graph.add_edge("u:1", "i:1")
        with pytest.raises(ValueError):
            steiner_tree(graph, ["u:0", "u:1"], cost_fn=unit_cost)

    def test_adjacent_terminals_use_direct_edge(self, toy_graph):
        tree = steiner_tree(toy_graph, ["u:0", "i:0"], cost_fn=unit_cost)
        assert tree.num_edges == 1
        assert tree.has_edge("u:0", "i:0")

    def test_no_non_terminal_leaves(self, small_kg):
        terminals = ["u:0", "i:1", "i:3", "i:5"]
        tree = steiner_tree(small_kg, terminals, cost_fn=unit_cost)
        for node in tree.nodes():
            if tree.degree(node) == 1:
                assert node in terminals


class TestSteinerQuality:
    def _random_terminals(self, graph, rng, count):
        nodes = sorted(graph.nodes())
        picks = rng.choice(len(nodes), size=count, replace=False)
        return [nodes[int(p)] for p in picks]

    def test_within_2x_of_networkx_steiner(self, small_kg):
        """networkx's steiner_tree is the same 2-approximation family;
        weights should agree within a 2x band both ways."""
        from networkx.algorithms.approximation import steiner_tree as nx_st

        rng = np.random.default_rng(21)
        nx_graph = nx.Graph()
        for edge in small_kg.edges():
            nx_graph.add_edge(edge.source, edge.target, weight=1.0)

        for _ in range(3):
            terminals = self._random_terminals(small_kg, rng, 5)
            ours = steiner_tree(small_kg, terminals, cost_fn=unit_cost)
            theirs = nx_st(nx_graph, terminals, weight="weight")
            ours_cost = ours.num_edges
            theirs_cost = theirs.number_of_edges()
            assert ours_cost <= 2 * max(1, theirs_cost)
            assert theirs_cost <= 2 * max(1, ours_cost)

    def test_weighted_cost_prefers_cheap_edges(self):
        # Two routes u:0 -> i:1: direct heavy edge vs 2-hop cheap route.
        graph = KnowledgeGraph()
        graph.add_edge("u:0", "i:1", 1.0)  # direct, cost 10 below
        graph.add_edge("u:0", "i:0", 1.0)
        graph.add_edge("i:0", "e:g:0", 1.0, "g")
        graph.add_edge("e:g:0", "i:1", 1.0, "g")

        def costs(u, v, _w):
            if {u, v} == {"u:0", "i:1"}:
                return 10.0
            return 1.0

        tree = steiner_tree(graph, ["u:0", "i:1"], cost_fn=costs)
        assert not tree.has_edge("u:0", "i:1")
        assert tree.num_edges == 3

    def test_terminal_only_graph_is_path_or_star(self):
        graph = KnowledgeGraph()
        graph.add_edge("u:0", "i:0", 1.0)
        graph.add_edge("u:1", "i:0", 1.0)
        graph.add_edge("u:2", "i:0", 1.0)
        tree = steiner_tree(
            graph, ["u:0", "u:1", "u:2"], cost_fn=unit_cost
        )
        assert is_tree(tree)
        assert tree.num_edges == 3  # star through i:0

    def test_deterministic(self, small_kg):
        terminals = ["u:1", "i:2", "i:4"]
        a = steiner_tree(small_kg, terminals, cost_fn=unit_cost)
        b = steiner_tree(small_kg, terminals, cost_fn=unit_cost)
        assert sorted(e.key() for e in a.edges()) == sorted(
            e.key() for e in b.edges()
        )
