"""Kruskal / Prim MSTs, cross-checked against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.mst import kruskal_mst, prim_mst, total_weight


def random_edge_list(rng, num_nodes=12, num_edges=30):
    nodes = [f"n{i}" for i in range(num_nodes)]
    edges = []
    seen = set()
    # Ring first so the graph is connected.
    for i in range(num_nodes):
        a, b = nodes[i], nodes[(i + 1) % num_nodes]
        edges.append((a, b, float(rng.uniform(0.1, 10.0))))
        seen.add(frozenset((a, b)))
    while len(edges) < num_edges:
        a, b = rng.choice(num_nodes, size=2, replace=False)
        key = frozenset((nodes[a], nodes[b]))
        if key in seen:
            continue
        seen.add(key)
        edges.append((nodes[a], nodes[b], float(rng.uniform(0.1, 10.0))))
    return nodes, edges


class TestMST:
    def test_simple_triangle(self):
        nodes = ["a", "b", "c"]
        edges = [("a", "b", 1.0), ("b", "c", 2.0), ("a", "c", 3.0)]
        mst = kruskal_mst(nodes, edges)
        assert total_weight(mst) == 3.0
        assert len(mst) == 2

    def test_kruskal_matches_networkx_weight(self):
        rng = np.random.default_rng(3)
        for _ in range(5):
            nodes, edges = random_edge_list(rng)
            ours = total_weight(kruskal_mst(nodes, edges))
            g = nx.Graph()
            for u, v, w in edges:
                g.add_edge(u, v, weight=w)
            theirs = sum(
                d["weight"]
                for _, _, d in nx.minimum_spanning_tree(g).edges(data=True)
            )
            assert ours == pytest.approx(theirs)

    def test_prim_matches_kruskal_weight(self):
        rng = np.random.default_rng(5)
        for _ in range(5):
            nodes, edges = random_edge_list(rng)
            assert total_weight(prim_mst(nodes, edges)) == pytest.approx(
                total_weight(kruskal_mst(nodes, edges))
            )

    def test_disconnected_yields_forest(self):
        nodes = ["a", "b", "c", "d"]
        edges = [("a", "b", 1.0), ("c", "d", 2.0)]
        assert len(kruskal_mst(nodes, edges)) == 2
        assert len(prim_mst(nodes, edges)) == 2

    def test_empty_input(self):
        assert kruskal_mst([], []) == []
        assert prim_mst([], []) == []

    def test_single_node(self):
        assert kruskal_mst(["a"], []) == []
        assert prim_mst(["a"], []) == []

    def test_spanning_property(self):
        rng = np.random.default_rng(9)
        nodes, edges = random_edge_list(rng)
        mst = kruskal_mst(nodes, edges)
        assert len(mst) == len(nodes) - 1
        touched = {n for u, v, _ in mst for n in (u, v)}
        assert touched == set(nodes)
