"""Centrality measures, cross-checked against networkx."""

import networkx as nx
import pytest

from repro.graph.centrality import (
    closeness_centrality,
    degree_centrality,
    harmonic_centrality,
    pagerank,
)
from repro.graph.knowledge_graph import KnowledgeGraph


def to_networkx(graph):
    g = nx.Graph()
    for node in graph.nodes():
        g.add_node(node)
    for edge in graph.edges():
        g.add_edge(edge.source, edge.target)
    return g


class TestDegreeCentrality:
    def test_hub_has_max(self, toy_graph):
        scores = degree_centrality(toy_graph)
        assert scores["i:1"] == 1.0  # degree 3 is the max

    def test_proportional_to_networkx(self, small_kg):
        ours = degree_centrality(small_kg)
        theirs = nx.degree_centrality(to_networkx(small_kg))
        top = max(theirs.values())
        for node in list(ours)[:50]:
            assert ours[node] == pytest.approx(theirs[node] / top)


class TestCloseness:
    def test_matches_networkx_ordering(self, toy_graph):
        ours = closeness_centrality(toy_graph)
        theirs = nx.closeness_centrality(to_networkx(toy_graph))
        best_ours = max(ours, key=ours.get)
        best_theirs = max(theirs, key=theirs.get)
        assert best_ours == best_theirs

    def test_exact_proportional_to_networkx(self, toy_graph):
        ours = closeness_centrality(toy_graph)
        theirs = nx.closeness_centrality(to_networkx(toy_graph))
        top = max(theirs.values())
        for node, value in ours.items():
            assert value == pytest.approx(theirs[node] / top)

    def test_sampled_close_to_exact(self, small_kg):
        import numpy as np

        exact = closeness_centrality(small_kg)
        sampled = closeness_centrality(
            small_kg, sample_sources=80, rng=np.random.default_rng(1)
        )
        # Top-decile nodes should substantially overlap.
        k = max(5, len(exact) // 10)
        top_exact = set(sorted(exact, key=exact.get, reverse=True)[:k])
        top_sampled = set(sorted(sampled, key=sampled.get, reverse=True)[:k])
        assert len(top_exact & top_sampled) >= k // 2

    def test_empty_graph(self):
        assert closeness_centrality(KnowledgeGraph()) == {}


class TestHarmonic:
    def test_proportional_to_networkx(self, toy_graph):
        ours = harmonic_centrality(toy_graph)
        theirs = nx.harmonic_centrality(to_networkx(toy_graph))
        top = max(theirs.values())
        for node, value in ours.items():
            assert value == pytest.approx(theirs[node] / top)


class TestPageRank:
    def test_matches_networkx(self, toy_graph):
        ours = pagerank(toy_graph)
        theirs = nx.pagerank(to_networkx(toy_graph), alpha=0.85)
        top = max(theirs.values())
        for node, value in ours.items():
            assert value == pytest.approx(theirs[node] / top, abs=0.02)

    def test_matches_networkx_on_generated_graph(self, small_kg):
        ours = pagerank(small_kg)
        theirs = nx.pagerank(to_networkx(small_kg), alpha=0.85)
        top = max(theirs.values())
        mismatches = sum(
            1
            for node, value in ours.items()
            if abs(value - theirs[node] / top) > 0.03
        )
        assert mismatches <= len(ours) * 0.02

    def test_isolated_node_handled(self):
        graph = KnowledgeGraph()
        graph.add_edge("u:0", "i:0")
        graph.add_node("i:9")
        scores = pagerank(graph)
        assert scores["i:9"] > 0.0
        assert max(scores.values()) == 1.0

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            pagerank(KnowledgeGraph())
