"""Dijkstra / BFS, cross-checked against networkx on random graphs."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.shortest_paths import (
    bfs_distances,
    bfs_eccentricity,
    bfs_shortest_path,
    dijkstra,
    dijkstra_multi_source,
    reconstruct_path,
    shortest_path_between,
)


def random_kg(rng, num_users=8, num_items=10, num_edges=40):
    """Random bipartite-ish KG with positive weights."""
    graph = KnowledgeGraph()
    for _ in range(num_edges):
        u = f"u:{rng.integers(0, num_users)}"
        i = f"i:{rng.integers(0, num_items)}"
        graph.add_edge(u, i, float(rng.uniform(0.5, 5.0)))
    # Sprinkle knowledge edges.
    for _ in range(num_edges // 3):
        i = f"i:{rng.integers(0, num_items)}"
        e = f"e:x:{rng.integers(0, 5)}"
        if i in graph:
            graph.add_edge(i, e, float(rng.uniform(0.1, 1.0)), "x")
    return graph


def to_networkx(graph: KnowledgeGraph) -> nx.Graph:
    g = nx.Graph()
    for edge in graph.edges():
        g.add_edge(edge.source, edge.target, weight=edge.weight)
    return g


class TestDijkstra:
    def test_distances_on_toy(self, toy_graph):
        dist, _prev = dijkstra(toy_graph, "u:0")
        assert dist["u:0"] == 0.0
        # Cheapest route to i:0 is u:0 -> i:2 (3) then free knowledge
        # edges i:2 - director - i:1 - genre - i:0, total 3.
        assert dist["i:0"] == 3.0
        assert dist["e:genre:0"] == 3.0

    def test_unknown_source_raises(self, toy_graph):
        with pytest.raises(KeyError):
            dijkstra(toy_graph, "u:99")

    def test_negative_cost_rejected(self, toy_graph):
        with pytest.raises(ValueError):
            dijkstra(toy_graph, "u:0", cost_fn=lambda u, v, w: -1.0)

    def test_early_exit_covers_targets(self, toy_graph):
        dist, prev = dijkstra(toy_graph, "u:0", targets={"i:1"})
        assert "i:1" in dist
        nodes = reconstruct_path(prev, "u:0", "i:1")
        assert nodes[0] == "u:0"
        assert nodes[-1] == "i:1"

    def test_matches_networkx_on_random_graphs(self):
        rng = np.random.default_rng(11)
        for _ in range(5):
            graph = random_kg(rng)
            nx_graph = to_networkx(graph)
            source = next(iter(graph.nodes()))
            dist, _ = dijkstra(graph, source)
            nx_dist = nx.single_source_dijkstra_path_length(
                nx_graph, source
            )
            assert set(dist) == set(nx_dist)
            for node, value in nx_dist.items():
                assert dist[node] == pytest.approx(value)

    def test_custom_cost_fn(self, toy_graph):
        dist, _ = dijkstra(toy_graph, "u:0", cost_fn=lambda u, v, w: 1.0)
        assert dist["i:1"] == 3.0  # u:0 -> i:0 -> genre -> i:1 in hops


class TestPairShortestPath:
    def test_path_between(self, toy_graph):
        nodes, cost = shortest_path_between(
            toy_graph, "u:0", "i:1", cost_fn=lambda u, v, w: 1.0
        )
        assert nodes[0] == "u:0"
        assert nodes[-1] == "i:1"
        assert cost == 3.0

    def test_disconnected_raises(self):
        graph = KnowledgeGraph()
        graph.add_edge("u:0", "i:0")
        graph.add_edge("u:1", "i:1")
        with pytest.raises(ValueError):
            shortest_path_between(graph, "u:0", "i:1")

    def test_reconstruct_requires_recorded_target(self):
        with pytest.raises(KeyError):
            reconstruct_path({}, "a", "b")

    def test_reconstruct_source_is_trivial(self):
        assert reconstruct_path({}, "a", "a") == ["a"]


class TestMultiSource:
    def test_origin_assignment(self, toy_graph):
        dist, _prev, origin = dijkstra_multi_source(
            toy_graph, ["u:0", "u:1"], cost_fn=lambda u, v, w: 1.0
        )
        assert origin["u:0"] == "u:0"
        assert origin["u:1"] == "u:1"
        assert dist["i:1"] == 1.0
        assert origin["i:1"] == "u:1"

    def test_matches_min_of_single_sources(self):
        rng = np.random.default_rng(7)
        graph = random_kg(rng)
        sources = list(graph.nodes())[:3]
        multi, _, _ = dijkstra_multi_source(graph, sources)
        singles = [dijkstra(graph, s)[0] for s in sources]
        for node in multi:
            best = min(d.get(node, float("inf")) for d in singles)
            assert multi[node] == pytest.approx(best)


class TestBFS:
    def test_bfs_shortest_path_hops(self, toy_graph):
        nodes = bfs_shortest_path(toy_graph, "u:0", "u:1")
        assert nodes is not None
        assert nodes[0] == "u:0"
        assert nodes[-1] == "u:1"
        assert len(nodes) == 5

    def test_bfs_same_node(self, toy_graph):
        assert bfs_shortest_path(toy_graph, "u:0", "u:0") == ["u:0"]

    def test_bfs_disconnected_returns_none(self):
        graph = KnowledgeGraph()
        graph.add_edge("u:0", "i:0")
        graph.add_node("i:9")
        assert bfs_shortest_path(graph, "u:0", "i:9") is None

    def test_bfs_missing_node_returns_none(self, toy_graph):
        assert bfs_shortest_path(toy_graph, "u:0", "i:99") is None

    def test_bfs_distances_match_networkx(self, small_kg):
        source = next(iter(small_kg.nodes()))
        ours = bfs_distances(small_kg, source)
        theirs = nx.single_source_shortest_path_length(
            to_networkx(small_kg), source
        )
        assert ours == dict(theirs)

    def test_eccentricity_consistent_with_distances(self, toy_graph):
        ecc, total, reached = bfs_eccentricity(toy_graph, "u:0")
        dist = bfs_distances(toy_graph, "u:0")
        assert ecc == max(dist.values())
        assert total == sum(dist.values())
        assert reached == len(dist) - 1
