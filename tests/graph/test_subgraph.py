"""Subgraph extraction and connectivity predicates."""

import pytest

from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.subgraph import (
    edge_subgraph,
    induced_subgraph,
    is_forest,
    is_tree,
    is_weakly_connected,
    weakly_connected_components,
)


class TestInducedSubgraph:
    def test_keeps_internal_edges_only(self, toy_graph):
        sub = induced_subgraph(toy_graph, ["u:0", "i:0", "i:2"])
        assert sub.num_nodes == 3
        assert sub.has_edge("u:0", "i:0")
        assert sub.has_edge("u:0", "i:2")
        assert sub.num_edges == 2

    def test_unknown_node_raises(self, toy_graph):
        with pytest.raises(KeyError):
            induced_subgraph(toy_graph, ["u:0", "i:77"])

    def test_preserves_relations(self, toy_graph):
        sub = induced_subgraph(toy_graph, ["i:0", "e:genre:0"])
        assert sub.relation("i:0", "e:genre:0") == "genre"

    def test_order_independent_of_input_order(self, toy_graph):
        # The assembly order must not leak the caller's iteration order
        # (summarizers pass sets, which hash-randomize across
        # interpreter runs) — durability's bit-identical replay
        # guarantee depends on it.
        nodes = ["u:0", "i:0", "i:2", "e:genre:0"]
        forward = induced_subgraph(toy_graph, nodes)
        backward = induced_subgraph(toy_graph, reversed(nodes))
        assert list(forward.nodes()) == list(backward.nodes())
        assert list(forward.nodes()) == sorted(nodes)
        for node in forward.nodes():
            assert list(forward.neighbors(node).items()) == (
                list(backward.neighbors(node).items())
            )


class TestEdgeSubgraph:
    def test_exact_edges(self, toy_graph):
        sub = edge_subgraph(toy_graph, [("u:0", "i:0"), ("i:0", "e:genre:0")])
        assert sub.num_edges == 2
        assert sub.num_nodes == 3
        assert sub.weight("u:0", "i:0") == 5.0

    def test_missing_edge_raises(self, toy_graph):
        with pytest.raises(KeyError):
            edge_subgraph(toy_graph, [("u:0", "i:1")])

    def test_order_independent_of_input_order(self, toy_graph):
        edges = [("u:0", "i:0"), ("i:0", "e:genre:0"), ("u:0", "i:2")]
        forward = edge_subgraph(toy_graph, edges)
        backward = edge_subgraph(toy_graph, reversed(edges))
        assert list(forward.nodes()) == list(backward.nodes())
        for node in forward.nodes():
            assert list(forward.neighbors(node).items()) == (
                list(backward.neighbors(node).items())
            )


class TestConnectivity:
    def test_toy_graph_connected(self, toy_graph):
        assert is_weakly_connected(toy_graph)
        assert len(weakly_connected_components(toy_graph)) == 1

    def test_two_components(self):
        graph = KnowledgeGraph()
        graph.add_edge("u:0", "i:0")
        graph.add_edge("u:1", "i:1")
        components = weakly_connected_components(graph)
        assert len(components) == 2
        assert not is_weakly_connected(graph)

    def test_empty_graph_is_connected(self):
        assert is_weakly_connected(KnowledgeGraph())

    def test_isolated_node_counts(self):
        graph = KnowledgeGraph()
        graph.add_edge("u:0", "i:0")
        graph.add_node("i:9")
        assert len(weakly_connected_components(graph)) == 2


class TestTreePredicates:
    def test_path_is_tree(self):
        graph = KnowledgeGraph()
        graph.add_edge("u:0", "i:0")
        graph.add_edge("i:0", "e:g:0", 0.0, "g")
        assert is_tree(graph)
        assert is_forest(graph)

    def test_cycle_is_not_tree(self):
        graph = KnowledgeGraph()
        graph.add_edge("u:0", "i:0")
        graph.add_edge("i:0", "e:g:0", 0.0, "g")
        graph.add_edge("e:g:0", "i:1", 0.0, "g")
        graph.add_edge("i:1", "u:0")
        assert not is_tree(graph)
        assert not is_forest(graph)

    def test_forest_not_tree(self):
        graph = KnowledgeGraph()
        graph.add_edge("u:0", "i:0")
        graph.add_edge("u:1", "i:1")
        assert not is_tree(graph)
        assert is_forest(graph)

    def test_empty_is_tree(self):
        assert is_tree(KnowledgeGraph())
