"""Node/edge typing rules."""

import pytest

from repro.graph.types import (
    Edge,
    EdgeType,
    GraphStats,
    Node,
    NodeType,
    external_id,
    item_id,
    undirected_key,
    user_id,
)


class TestNodeType:
    def test_user_prefix(self):
        assert NodeType.of("u:0") is NodeType.USER

    def test_item_prefix(self):
        assert NodeType.of("i:42") is NodeType.ITEM

    def test_external_prefix(self):
        assert NodeType.of("e:genre:3") is NodeType.EXTERNAL

    def test_unknown_prefix_rejected(self):
        with pytest.raises(ValueError):
            NodeType.of("x:1")

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            NodeType.of("")


class TestIdBuilders:
    def test_round_trip_user(self):
        assert NodeType.of(user_id(7)) is NodeType.USER

    def test_round_trip_item(self):
        assert NodeType.of(item_id(7)) is NodeType.ITEM

    def test_round_trip_external(self):
        assert NodeType.of(external_id("genre", 7)) is NodeType.EXTERNAL

    def test_external_id_embeds_relation(self):
        assert external_id("director", 3) == "e:director:3"


class TestEdgeType:
    def test_user_item_is_interaction(self):
        assert EdgeType.of("u:0", "i:0") is EdgeType.INTERACTION

    def test_item_user_is_interaction(self):
        assert EdgeType.of("i:0", "u:0") is EdgeType.INTERACTION

    def test_item_external_is_knowledge(self):
        assert EdgeType.of("i:0", "e:genre:0") is EdgeType.KNOWLEDGE

    def test_user_external_is_knowledge(self):
        assert EdgeType.of("u:0", "e:age:1") is EdgeType.KNOWLEDGE

    def test_user_user_rejected(self):
        with pytest.raises(ValueError):
            EdgeType.of("u:0", "u:1")

    def test_item_item_rejected(self):
        with pytest.raises(ValueError):
            EdgeType.of("i:0", "i:1")


class TestRecords:
    def test_node_display_prefers_name(self):
        assert Node("i:0", name="Casablanca").display == "Casablanca"

    def test_node_display_falls_back_to_id(self):
        assert Node("i:0").display == "i:0"

    def test_node_type_property(self):
        assert Node("e:genre:0").type is NodeType.EXTERNAL

    def test_edge_key_is_direction_insensitive(self):
        assert Edge("u:0", "i:0").key() == Edge("i:0", "u:0").key()

    def test_edge_type_property(self):
        assert Edge("i:0", "e:genre:0").type is EdgeType.KNOWLEDGE

    def test_undirected_key_orders_endpoints(self):
        assert undirected_key("u:9", "i:1") == ("i:1", "u:9")
        assert undirected_key("i:1", "u:9") == ("i:1", "u:9")


class TestGraphStats:
    def test_totals(self):
        stats = GraphStats(
            num_users=2,
            num_items=3,
            num_external=4,
            num_interaction_edges=5,
            num_knowledge_edges=6,
        )
        assert stats.num_nodes == 9
        assert stats.num_edges == 11
