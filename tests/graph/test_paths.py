"""Path record semantics."""

import pytest

from repro.graph.paths import Path, paths_edge_frequency, paths_node_multiset
from repro.graph.types import NodeType


class TestPathConstruction:
    def test_defaults_user_and_item_from_endpoints(self):
        path = Path(nodes=("u:0", "i:0"))
        assert path.user == "u:0"
        assert path.item == "i:0"

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            Path(nodes=("u:0",))

    def test_revisit_rejected(self):
        with pytest.raises(ValueError):
            Path(nodes=("u:0", "i:0", "u:0"))

    def test_from_nodes(self):
        path = Path.from_nodes(["u:0", "i:0", "e:genre:0", "i:1"], score=0.5)
        assert path.score == 0.5
        assert path.num_hops == 3


class TestPathViews:
    def test_len_is_hops(self):
        path = Path(nodes=("u:0", "i:0", "e:genre:0", "i:1"))
        assert len(path) == 3

    def test_edges_in_order(self):
        path = Path(nodes=("u:0", "i:0", "e:genre:0"))
        assert list(path.edges()) == [("u:0", "i:0"), ("i:0", "e:genre:0")]

    def test_edge_keys_normalized(self):
        path = Path(nodes=("u:0", "i:0"))
        assert list(path.edge_keys()) == [("i:0", "u:0")]

    def test_intermediate_nodes(self):
        path = Path(nodes=("u:0", "i:0", "e:genre:0", "i:1"))
        assert path.intermediate_nodes() == ("i:0", "e:genre:0")

    def test_node_types(self):
        path = Path(nodes=("u:0", "i:0", "e:genre:0", "i:1"))
        assert path.node_types() == (
            NodeType.USER,
            NodeType.ITEM,
            NodeType.EXTERNAL,
            NodeType.ITEM,
        )


class TestPathValidation:
    def test_valid_in_graph(self, toy_graph):
        path = Path(nodes=("u:0", "i:0", "e:genre:0", "i:1"))
        assert path.is_valid_in(toy_graph)
        assert path.invalid_edges(toy_graph) == []

    def test_hallucinated_edge_detected(self, toy_graph):
        path = Path(nodes=("u:0", "i:1"))  # no such edge
        assert not path.is_valid_in(toy_graph)
        assert path.invalid_edges(toy_graph) == [("u:0", "i:1")]

    def test_total_weight_skips_missing_edges(self, toy_graph):
        path = Path(nodes=("u:0", "i:0", "e:genre:0", "i:1"))
        assert path.total_weight(toy_graph) == 5.0  # only u:0-i:0 weighted


class TestAggregations:
    def test_node_multiset_counts_repeats(self):
        paths = [
            Path(nodes=("u:0", "i:0", "e:genre:0", "i:1")),
            Path(nodes=("u:0", "i:2", "e:genre:0", "i:3")),
        ]
        counts = paths_node_multiset(paths)
        assert counts["u:0"] == 2
        assert counts["e:genre:0"] == 2
        assert counts["i:1"] == 1

    def test_edge_frequency_is_direction_insensitive(self):
        paths = [
            Path(nodes=("u:0", "i:0")),
            Path(nodes=("u:1", "i:0", "u:0"), user="u:1", item="u:0"),
        ]
        frequency = paths_edge_frequency(paths)
        assert frequency[("i:0", "u:0")] == 2
