"""Property-based tests: PCST invariants on random graphs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.pcst import paper_pcst
from repro.graph.shortest_paths import bfs_shortest_path
from repro.graph.subgraph import is_forest

from tests.properties.test_steiner_properties import build_connected_kg

graph_params = st.tuples(
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=3, max_value=12),
    st.integers(min_value=1, max_value=6),
)


class TestPCSTProperties:
    @given(graph_params)
    @settings(max_examples=30, deadline=None)
    def test_forest_containing_all_reachable_seeds(self, params):
        seed, num_users, num_items, num_terminals = params
        graph = build_connected_kg(seed, num_users, num_items)
        rng = np.random.default_rng(seed + 4)
        nodes = sorted(graph.nodes())
        picks = rng.choice(
            len(nodes), size=min(num_terminals, len(nodes)), replace=False
        )
        terminals = [nodes[int(p)] for p in picks]
        forest = paper_pcst(graph, {t: 1.0 for t in terminals})
        assert is_forest(forest)
        for terminal in terminals:
            assert terminal in forest

    @given(graph_params)
    @settings(max_examples=30, deadline=None)
    def test_terminals_mutually_connected_in_connected_graph(self, params):
        seed, num_users, num_items, num_terminals = params
        graph = build_connected_kg(seed, num_users, num_items)
        rng = np.random.default_rng(seed + 5)
        nodes = sorted(graph.nodes())
        picks = rng.choice(
            len(nodes), size=min(num_terminals, len(nodes)), replace=False
        )
        terminals = [nodes[int(p)] for p in picks]
        forest = paper_pcst(graph, {t: 1.0 for t in terminals})
        # build_connected_kg is connected, so PCST must link all seeds.
        for other in terminals[1:]:
            assert (
                bfs_shortest_path(forest, terminals[0], other) is not None
            )

    @given(graph_params)
    @settings(max_examples=20, deadline=None)
    def test_pruning_preserves_terminal_connectivity(self, params):
        seed, num_users, num_items, num_terminals = params
        graph = build_connected_kg(seed, num_users, num_items)
        rng = np.random.default_rng(seed + 6)
        nodes = sorted(graph.nodes())
        picks = rng.choice(
            len(nodes), size=min(num_terminals, len(nodes)), replace=False
        )
        terminals = [nodes[int(p)] for p in picks]
        pruned = paper_pcst(
            graph,
            {t: 1.0 for t in terminals},
            prune_zero_prize_leaves=True,
        )
        for other in terminals[1:]:
            assert (
                bfs_shortest_path(pruned, terminals[0], other) is not None
            )
