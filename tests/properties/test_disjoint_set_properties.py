"""Property-based tests: union-find is an equivalence relation, and the
array-backed IndexedDisjointSet replays the dict-based one exactly."""

from hypothesis import given
from hypothesis import strategies as st

from repro.graph.disjoint_set import DisjointSet, IndexedDisjointSet

unions = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=0, max_value=30),
    ),
    max_size=60,
)


class TestDisjointSetProperties:
    @given(unions)
    def test_connectivity_matches_reference_partition(self, pairs):
        ds = DisjointSet(range(31))
        reference = {i: {i} for i in range(31)}
        for a, b in pairs:
            ds.union(a, b)
            if reference[a] is not reference[b]:
                merged = reference[a] | reference[b]
                for member in merged:
                    reference[member] = merged
        for a in range(31):
            for b in (0, 7, 30):
                assert ds.connected(a, b) == (b in reference[a])

    @given(unions)
    def test_num_sets_consistent_with_partition(self, pairs):
        ds = DisjointSet(range(31))
        for a, b in pairs:
            ds.union(a, b)
        distinct = {frozenset(s) for s in ds.sets()}
        assert ds.num_sets == len(distinct)
        assert sum(len(s) for s in distinct) == 31

    @given(unions)
    def test_set_size_matches_materialized_sets(self, pairs):
        ds = DisjointSet(range(31))
        for a, b in pairs:
            ds.union(a, b)
        for group in ds.sets():
            for member in group:
                assert ds.set_size(member) == len(group)


class TestIndexedDisjointSetParity:
    """The PCST growth swaps DisjointSet for IndexedDisjointSet; identical
    op sequences must yield identical observable behaviour (union return
    values included — they decide which edges enter the grown tree)."""

    @given(unions)
    def test_union_sequence_identical(self, pairs):
        ds = DisjointSet(range(31))
        ids = IndexedDisjointSet(31, range(31))
        for a, b in pairs:
            assert ds.union(a, b) == ids.union(a, b)
            assert ds.connected(a, b) and ids.connected(a, b)
        assert ds.num_sets == ids.num_sets
        for a in range(31):
            for b in (0, 7, 30):
                assert ds.connected(a, b) == ids.connected(a, b)
            assert ds.set_size(a) == ids.set_size(a)

    @given(unions)
    def test_lazy_registration_matches(self, pairs):
        ds = DisjointSet()
        ids = IndexedDisjointSet(31)
        for a, b in pairs:
            assert (a in ds) == (a in ids)
            assert ds.union(a, b) == ids.union(a, b)
        assert len(ds) == len(ids)
        assert ds.num_sets == ids.num_sets
