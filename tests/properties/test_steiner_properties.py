"""Property-based tests: Steiner tree invariants on random graphs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.steiner import steiner_tree
from repro.graph.subgraph import is_tree


def build_connected_kg(seed: int, num_users: int, num_items: int):
    """Random connected user-item-entity KG."""
    rng = np.random.default_rng(seed)
    graph = KnowledgeGraph()
    # Spine: every item rated by some user; chain users via shared items.
    for i in range(num_items):
        u = i % num_users
        graph.add_edge(f"u:{u}", f"i:{i}", float(rng.integers(1, 6)))
        graph.add_edge(
            f"u:{(u + 1) % num_users}", f"i:{i}", float(rng.integers(1, 6))
        )
    for i in range(num_items):
        graph.add_edge(f"i:{i}", f"e:g:{i % 3}", 0.0, "g")
    # Random extra edges.
    for _ in range(num_items):
        u = int(rng.integers(0, num_users))
        i = int(rng.integers(0, num_items))
        graph.add_edge(f"u:{u}", f"i:{i}", float(rng.integers(1, 6)))
    return graph


graph_params = st.tuples(
    st.integers(min_value=0, max_value=1000),  # seed
    st.integers(min_value=2, max_value=6),  # users
    st.integers(min_value=3, max_value=12),  # items
    st.integers(min_value=2, max_value=6),  # terminals
)


class TestSteinerProperties:
    @given(graph_params)
    @settings(max_examples=30, deadline=None)
    def test_result_is_tree_containing_terminals(self, params):
        seed, num_users, num_items, num_terminals = params
        graph = build_connected_kg(seed, num_users, num_items)
        rng = np.random.default_rng(seed + 1)
        nodes = sorted(graph.nodes())
        picks = rng.choice(
            len(nodes), size=min(num_terminals, len(nodes)), replace=False
        )
        terminals = [nodes[int(p)] for p in picks]
        tree = steiner_tree(graph, terminals, cost_fn=lambda u, v, w: 1.0)
        assert is_tree(tree)
        for terminal in terminals:
            assert terminal in tree

    @given(graph_params)
    @settings(max_examples=30, deadline=None)
    def test_leaves_are_terminals(self, params):
        seed, num_users, num_items, num_terminals = params
        graph = build_connected_kg(seed, num_users, num_items)
        rng = np.random.default_rng(seed + 2)
        nodes = sorted(graph.nodes())
        picks = rng.choice(
            len(nodes), size=min(num_terminals, len(nodes)), replace=False
        )
        terminals = {nodes[int(p)] for p in picks}
        tree = steiner_tree(
            graph, sorted(terminals), cost_fn=lambda u, v, w: 1.0
        )
        for node in tree.nodes():
            if tree.degree(node) <= 1 and tree.num_nodes > 1:
                assert node in terminals

    @given(graph_params)
    @settings(max_examples=20, deadline=None)
    def test_edge_count_bounded_by_pairwise_paths(self, params):
        """|tree edges| never exceeds the sum of pairwise hop distances
        from the first terminal (a loose sanity bound on the 2-approx)."""
        from repro.graph.shortest_paths import bfs_distances

        seed, num_users, num_items, num_terminals = params
        graph = build_connected_kg(seed, num_users, num_items)
        rng = np.random.default_rng(seed + 3)
        nodes = sorted(graph.nodes())
        picks = rng.choice(
            len(nodes), size=min(num_terminals, len(nodes)), replace=False
        )
        terminals = [nodes[int(p)] for p in picks]
        tree = steiner_tree(graph, terminals, cost_fn=lambda u, v, w: 1.0)
        dist = bfs_distances(graph, terminals[0])
        star_bound = sum(dist[t] for t in terminals[1:])
        assert tree.num_edges <= star_bound or star_bound == 0
