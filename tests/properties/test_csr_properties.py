"""Property-based parity: the CSR engine vs the dict-based algorithms.

The frozen traversals are required to be *identical*, not merely
equivalent: same distances, same predecessor trees (tie-breaking
included), same Steiner trees. These properties exercise both the
tie-heavy regime (uniform costs) and weighted costs on random graphs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.shortest_paths import (
    bfs_distances,
    bfs_distances_indexed,
    dijkstra,
    dijkstra_frozen,
)
from repro.graph.steiner import steiner_tree


def build_random_kg(seed: int, num_users: int, num_items: int):
    """Random connected user-item-entity KG (zero-weight knowledge edges
    included, so stored-cost traversals hit ties and zero-cost hops)."""
    rng = np.random.default_rng(seed)
    graph = KnowledgeGraph()
    for i in range(num_items):
        u = i % num_users
        graph.add_edge(f"u:{u}", f"i:{i}", float(rng.integers(1, 6)))
        graph.add_edge(
            f"u:{(u + 1) % num_users}", f"i:{i}", float(rng.integers(1, 6))
        )
    for i in range(num_items):
        graph.add_edge(f"i:{i}", f"e:g:{i % 3}", 0.0, "g")
    for _ in range(num_items):
        u = int(rng.integers(0, num_users))
        i = int(rng.integers(0, num_items))
        graph.add_edge(f"u:{u}", f"i:{i}", float(rng.integers(1, 6)))
    return graph


graph_params = st.tuples(
    st.integers(min_value=0, max_value=1000),  # seed
    st.integers(min_value=2, max_value=6),  # users
    st.integers(min_value=3, max_value=12),  # items
)

UNIFORM = ("uniform", lambda u, v, w: 1.0)
STORED = ("stored", None)
RATING = ("rating-discount", lambda u, v, w: 1.0 / (1.0 + w))


class TestDijkstraParity:
    @given(graph_params, st.sampled_from([UNIFORM, STORED, RATING]))
    @settings(max_examples=40, deadline=None)
    def test_full_settle_identical(self, params, named_cost):
        seed, num_users, num_items = params
        _, cost_fn = named_cost
        graph = build_random_kg(seed, num_users, num_items)
        frozen = graph.freeze()
        costs = None if cost_fn is None else frozen.costs_from(cost_fn)
        for source in list(graph.nodes())[::3]:
            dict_dist, dict_prev = dijkstra(graph, source, cost_fn=cost_fn)
            dist, prev = dijkstra_frozen(frozen, source, costs=costs)
            assert dist == dict_dist
            assert prev == dict_prev

    @given(graph_params)
    @settings(max_examples=40, deadline=None)
    def test_early_exit_identical(self, params):
        seed, num_users, num_items = params
        graph = build_random_kg(seed, num_users, num_items)
        frozen = graph.freeze()
        cost_fn = UNIFORM[1]  # maximal ties
        costs = frozen.costs_from(cost_fn)
        nodes = sorted(graph.nodes())
        rng = np.random.default_rng(seed + 7)
        targets = {
            nodes[int(i)]
            for i in rng.choice(len(nodes), size=min(4, len(nodes)))
        }
        source = nodes[int(rng.integers(0, len(nodes)))]
        dict_dist, dict_prev = dijkstra(
            graph, source, cost_fn=cost_fn, targets=set(targets)
        )
        dist, prev = dijkstra_frozen(
            frozen, source, costs=costs, targets=set(targets)
        )
        assert dist == dict_dist
        assert prev == dict_prev

    @given(graph_params)
    @settings(max_examples=30, deadline=None)
    def test_bfs_identical(self, params):
        seed, num_users, num_items = params
        graph = build_random_kg(seed, num_users, num_items)
        frozen = graph.freeze()
        ids = frozen.ids
        for source in list(graph.nodes())[::4]:
            expected = bfs_distances(graph, source)
            indexed = bfs_distances_indexed(frozen, frozen.index_of(source))
            assert expected == {ids[n]: d for n, d in indexed.items()}


class TestSteinerParity:
    @given(graph_params, st.sampled_from([UNIFORM, STORED, RATING]))
    @settings(max_examples=30, deadline=None)
    def test_trees_identical(self, params, named_cost):
        seed, num_users, num_items = params
        _, cost_fn = named_cost
        graph = build_random_kg(seed, num_users, num_items)
        frozen = graph.freeze()
        costs = None if cost_fn is None else frozen.costs_from(cost_fn)
        rng = np.random.default_rng(seed + 3)
        nodes = sorted(graph.nodes())
        picks = rng.choice(len(nodes), size=min(5, len(nodes)), replace=False)
        terminals = [nodes[int(p)] for p in picks]
        dict_tree = steiner_tree(graph, terminals, cost_fn=cost_fn)
        csr_tree = steiner_tree(
            graph, terminals, cost_fn=cost_fn, frozen=frozen, slot_costs=costs
        )
        assert sorted(dict_tree.nodes()) == sorted(csr_tree.nodes())
        assert sorted(
            (e.source, e.target, e.weight) for e in dict_tree.edges()
        ) == sorted((e.source, e.target, e.weight) for e in csr_tree.edges())
