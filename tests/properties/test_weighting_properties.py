"""Property-based tests: Eq. (1) cost transform invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scenarios import Scenario, SummaryTask
from repro.core.weighting import ExplanationWeighting
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.paths import Path


def make_setup(ratings):
    """Graph + task from a list of (item_index, rating) for user u:0."""
    graph = KnowledgeGraph()
    paths = []
    items = []
    for index, rating in enumerate(ratings):
        rated = f"i:{2 * index}"
        target = f"i:{2 * index + 1}"
        graph.add_edge("u:0", rated, rating)
        graph.add_edge(rated, f"e:g:{index}", 0.0, "g")
        graph.add_edge(f"e:g:{index}", target, 0.0, "g")
        paths.append(Path(nodes=("u:0", rated, f"e:g:{index}", target)))
        items.append(target)
    task = SummaryTask(
        scenario=Scenario.USER_CENTRIC,
        terminals=("u:0", *items),
        paths=tuple(paths),
        anchors=tuple(items),
        focus=("u:0",),
    )
    return graph, task


ratings_lists = st.lists(
    st.floats(min_value=1.0, max_value=5.0, allow_nan=False),
    min_size=1,
    max_size=6,
)
lambdas = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)


class TestWeightingProperties:
    @given(ratings_lists, lambdas)
    @settings(max_examples=60, deadline=None)
    def test_costs_always_in_unit_band(self, ratings, lam):
        graph, task = make_setup(ratings)
        weighting = ExplanationWeighting(
            graph, task, lam=lam, weight_influence=0.7
        )
        for edge in graph.edges():
            cost = weighting.cost(edge.source, edge.target, edge.weight)
            assert 0.3 - 1e-9 <= cost <= 1.0

    @given(ratings_lists)
    @settings(max_examples=40, deadline=None)
    def test_lambda_monotone_decreasing_cost(self, ratings):
        graph, task = make_setup(ratings)
        edge = next(iter(graph.edges()))
        previous = 1.1
        for lam in (0.0, 0.01, 1.0, 100.0):
            weighting = ExplanationWeighting(graph, task, lam=lam)
            cost = weighting.cost(edge.source, edge.target, edge.weight)
            assert cost <= previous + 1e-12
            previous = cost

    @given(ratings_lists, lambdas)
    @settings(max_examples=40, deadline=None)
    def test_off_path_edges_cost_one(self, ratings, lam):
        graph, task = make_setup(ratings)
        graph.add_edge("u:1", "i:0", 5.0)  # not on any path
        weighting = ExplanationWeighting(graph, task, lam=lam)
        assert weighting.cost("u:1", "i:0", 5.0) == 1.0

    @given(ratings_lists)
    @settings(max_examples=40, deadline=None)
    def test_boosted_weight_matches_formula(self, ratings):
        graph, task = make_setup(ratings)
        weighting = ExplanationWeighting(graph, task, lam=2.0)
        anchors = len(task.anchors)
        stored = graph.weight("u:0", "i:0")
        expected = stored * (1.0 + 2.0 * 1 / anchors)
        assert weighting.boosted_weight("u:0", "i:0", stored) == expected
