"""Property-based tests: metric ranges and monotonicity on random paths."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.explanation import PathSetExplanation
from repro.graph.paths import Path
from repro.metrics import (
    actionability,
    comprehensibility,
    diversity,
    privacy,
    redundancy,
)


@st.composite
def random_path(draw):
    """A 2-3 hop path over a small typed vocabulary, no revisits."""
    user = f"u:{draw(st.integers(0, 4))}"
    first = f"i:{draw(st.integers(0, 9))}"
    mid_kind = draw(st.sampled_from(["u", "e:g", "e:d"]))
    mid = f"{mid_kind}:{draw(st.integers(5, 9))}"
    last = f"i:{draw(st.integers(10, 19))}"
    nodes = (user, first, mid, last)
    if len(set(nodes)) != 4:
        nodes = (user, first, f"e:x:{draw(st.integers(0, 3))}", last)
    return Path(nodes=nodes, user=user, item=last)


path_sets = st.lists(random_path(), min_size=1, max_size=8).map(
    lambda ps: PathSetExplanation(paths=tuple(ps))
)


class TestMetricRanges:
    @given(path_sets)
    @settings(max_examples=60, deadline=None)
    def test_unit_interval_metrics(self, explanation):
        assert 0.0 <= actionability(explanation) <= 1.0
        assert 0.0 <= diversity(explanation) <= 1.0
        assert 0.0 <= redundancy(explanation) < 1.0
        assert 0.0 <= privacy(explanation) <= 1.0
        assert 0.0 < comprehensibility(explanation) <= 1.0

    @given(path_sets)
    @settings(max_examples=60, deadline=None)
    def test_comprehensibility_is_exact_inverse(self, explanation):
        assert comprehensibility(explanation) == 1.0 / sum(
            len(p) for p in explanation.paths
        )

    @given(path_sets)
    @settings(max_examples=40, deadline=None)
    def test_adding_a_path_never_raises_comprehensibility(self, explanation):
        extra = Path(nodes=("u:0", "i:0", "e:g:0", "i:19"))
        bigger = PathSetExplanation(paths=(*explanation.paths, extra))
        assert comprehensibility(bigger) < comprehensibility(explanation)

    @given(path_sets)
    @settings(max_examples=40, deadline=None)
    def test_duplicating_paths_increases_redundancy(self, explanation):
        doubled = PathSetExplanation(
            paths=(*explanation.paths, *explanation.paths)
        )
        assert redundancy(doubled) >= redundancy(explanation)

    @given(path_sets)
    @settings(max_examples=40, deadline=None)
    def test_duplicating_paths_decreases_diversity(self, explanation):
        doubled = PathSetExplanation(
            paths=(*explanation.paths, *explanation.paths)
        )
        if len(explanation.paths) >= 2:
            assert diversity(doubled) <= diversity(explanation) + 1e-9

    @given(path_sets)
    @settings(max_examples=40, deadline=None)
    def test_privacy_complements_user_share(self, explanation):
        mentions = explanation.node_mentions()
        users = sum(
            count for n, count in mentions.items() if n.startswith("u:")
        )
        total = sum(mentions.values())
        assert privacy(explanation) == 1.0 - users / total
