"""Property-based tests: the addressable heap behaves like a sorted map."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.heap import AddressableHeap

entries = st.dictionaries(
    st.integers(min_value=0, max_value=200),
    st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
    min_size=1,
    max_size=60,
)


class TestHeapProperties:
    @given(entries)
    def test_drains_in_sorted_order(self, mapping):
        heap = AddressableHeap()
        for key, priority in mapping.items():
            heap.push(key, priority)
        drained = []
        while heap:
            drained.append(heap.pop_min()[1])
        assert drained == sorted(drained)

    @given(entries, entries)
    def test_updates_respected(self, initial, updates):
        heap = AddressableHeap()
        expected = dict(initial)
        for key, priority in initial.items():
            heap.push(key, priority)
        for key, priority in updates.items():
            heap.update(key, priority)
            expected[key] = priority
        drained = {}
        while heap:
            key, priority = heap.pop_min()
            drained[key] = priority
        assert drained == expected

    @given(entries)
    def test_decrease_if_lower_never_raises_priority(self, mapping):
        heap = AddressableHeap()
        for key, priority in mapping.items():
            heap.push(key, priority)
        for key, priority in mapping.items():
            heap.decrease_if_lower(key, priority + 1.0)
            assert heap.priority(key) <= priority

    @given(entries)
    def test_len_tracks_membership(self, mapping):
        heap = AddressableHeap()
        for key, priority in mapping.items():
            heap.update(key, priority)
        assert len(heap) == len(mapping)
        heap.pop_min()
        assert len(heap) == len(mapping) - 1
