"""Property-based tests: the addressable heap behaves like a sorted map."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.heap import AddressableHeap

entries = st.dictionaries(
    st.integers(min_value=0, max_value=200),
    st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
    min_size=1,
    max_size=60,
)


class TestHeapProperties:
    @given(entries)
    def test_drains_in_sorted_order(self, mapping):
        heap = AddressableHeap()
        for key, priority in mapping.items():
            heap.push(key, priority)
        drained = []
        while heap:
            drained.append(heap.pop_min()[1])
        assert drained == sorted(drained)

    @given(entries, entries)
    def test_updates_respected(self, initial, updates):
        heap = AddressableHeap()
        expected = dict(initial)
        for key, priority in initial.items():
            heap.push(key, priority)
        for key, priority in updates.items():
            heap.update(key, priority)
            expected[key] = priority
        drained = {}
        while heap:
            key, priority = heap.pop_min()
            drained[key] = priority
        assert drained == expected

    @given(entries)
    def test_decrease_if_lower_never_raises_priority(self, mapping):
        heap = AddressableHeap()
        for key, priority in mapping.items():
            heap.push(key, priority)
        for key, priority in mapping.items():
            heap.decrease_if_lower(key, priority + 1.0)
            assert heap.priority(key) <= priority

    @given(entries)
    def test_len_tracks_membership(self, mapping):
        heap = AddressableHeap()
        for key, priority in mapping.items():
            heap.update(key, priority)
        assert len(heap) == len(mapping)
        heap.pop_min()
        assert len(heap) == len(mapping) - 1


# Random op sequences over a small dense key space: mixed pushes,
# decreases and pops, with deliberately colliding priorities.
heap_ops = st.lists(
    st.tuples(
        st.sampled_from(["update", "decrease_if_lower", "pop"]),
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=5),  # coarse -> many ties
    ),
    min_size=1,
    max_size=80,
)


class TestIndexedHeapMirrorsAddressable:
    """IndexedHeap is the tie-breaking oracle for the CSR Dijkstra: it
    must behave identically to AddressableHeap under any op sequence,
    including pop order among equal priorities."""

    @given(heap_ops)
    @settings(max_examples=100)
    def test_identical_behaviour_under_same_ops(self, ops):
        from repro.graph.heap import IndexedHeap

        reference: AddressableHeap[int] = AddressableHeap()
        indexed = IndexedHeap(16)
        for op, key, coarse in ops:
            priority = float(coarse)
            if op == "update":
                assert reference.update(key, priority) == indexed.update(
                    key, priority
                )
            elif op == "decrease_if_lower":
                assert reference.decrease_if_lower(
                    key, priority
                ) == indexed.decrease_if_lower(key, priority)
            elif reference:
                assert reference.pop_min() == indexed.pop_min()
            assert len(reference) == len(indexed)
        while reference:
            assert reference.pop_min() == indexed.pop_min()
        assert not indexed
