"""Canonical-SPT determinism and λ-aware reuse parity.

The contracts that let ``partial_reuse`` default on in the batch
engine:

- canonical path reconstruction picks the same tree regardless of heap
  tie-breaking — so the dict engine, the CSR engine, and any adjacency
  insertion order agree;
- closures *derived* from memoized base runs produce bit-identical
  summaries to cold runs;
- the serial, thread and process backends of :class:`BatchSummarizer`
  return bit-identical reports for the same workload.
"""

import random

import numpy as np
import pytest

from repro.core.batch import BatchSummarizer
from repro.core.scenarios import Scenario, SummaryTask
from repro.core.summarizer import Summarizer
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.paths import Path
from repro.graph.shortest_paths import dijkstra_indexed


def canonical(explanation):
    subgraph = explanation.subgraph
    return (
        sorted(subgraph.nodes()),
        sorted((e.source, e.target, e.weight) for e in subgraph.edges()),
    )


def _diamond() -> KnowledgeGraph:
    """Two equal-cost routes u:0 -> u:1; insertion favors the i:5 arm."""
    graph = KnowledgeGraph()
    graph.add_edge("u:0", "i:5", 1.0)
    graph.add_edge("i:5", "u:1", 1.0)
    graph.add_edge("u:0", "i:3", 1.0)
    graph.add_edge("i:3", "u:1", 1.0)
    return graph


def _task(terminals) -> SummaryTask:
    return SummaryTask(
        scenario=Scenario.USER_CENTRIC,
        terminals=tuple(terminals),
        paths=(),
        anchors=tuple(terminals[1:]),
        focus=(terminals[0],),
        k=len(terminals) - 1,
    )


class TestCanonicalTieBreaking:
    def test_min_id_route_wins_on_ties(self):
        """λ=0 costs are uniform: the heap would keep the first-inserted
        arm (i:5); canonical reconstruction picks the min-id arm (i:3),
        identically on both engines."""
        graph = _diamond()
        task = _task(["u:0", "u:1"])
        for engine in ("frozen", "dict"):
            tree = Summarizer(
                graph, method="ST", lam=0.0, engine=engine
            ).summarize(task)
            assert "i:3" in tree.subgraph
            assert "i:5" not in tree.subgraph

    def test_heap_order_preserved_when_canonical_off(self):
        graph = _diamond()
        task = _task(["u:0", "u:1"])
        for engine in ("frozen", "dict"):
            tree = Summarizer(
                graph, method="ST", lam=0.0, engine=engine, canonical=False
            ).summarize(task)
            assert "i:5" in tree.subgraph

    def test_insertion_order_independence(self):
        """Shuffled adjacency insertion must not change the summary
        (λ=0 is the tie-heavy worst case: every cost is exactly 1)."""
        edges = [("u:%d" % (i % 6), "i:%d" % i, 1.0 + i % 3) for i in range(12)]
        edges += [("u:%d" % ((i + 2) % 6), "i:%d" % i, 2.0) for i in range(12)]
        edges += [("i:%d" % i, "e:g:%d" % (i % 3), 0.0, "g") for i in range(12)]
        task = _task(["u:0", "i:3", "i:7", "u:5"])
        rng = random.Random(17)
        baseline = None
        for _shuffle in range(4):
            order = list(edges)
            rng.shuffle(order)
            graph = KnowledgeGraph.from_edges(order)
            for engine in ("frozen", "dict"):
                tree = Summarizer(
                    graph, method="ST", lam=0.0, engine=engine
                ).summarize(task)
                key = canonical(tree)
                if baseline is None:
                    baseline = key
                assert key == baseline


@pytest.fixture(scope="module")
def boosted_workload():
    """λ>0 tasks with pairwise-disjoint boost sets over a shared graph
    (each task boosts its own user's rating edges), the workload where
    partial reuse derives every closure from shared base runs."""
    rng = np.random.default_rng(23)
    graph = KnowledgeGraph()
    num_users, num_items = 10, 18
    for i in range(num_items):
        u = i % num_users
        graph.add_edge(f"u:{u}", f"i:{i}", float(rng.integers(1, 6)))
        graph.add_edge(
            f"u:{(u + 4) % num_users}", f"i:{i}", float(rng.integers(1, 6))
        )
        graph.add_edge(f"i:{i}", f"e:g:{i % 4}", 0.0, "g")
    tasks = []
    for u in range(num_users):
        user = f"u:{u}"
        items = sorted(graph.neighbors(user))[:3]
        tasks.append(
            SummaryTask(
                scenario=Scenario.USER_CENTRIC,
                terminals=(user, *items),
                paths=tuple(Path(nodes=(user, item)) for item in items),
                anchors=tuple(items),
                focus=(user,),
                k=len(items),
            )
        )
    return graph, tasks


class TestPartialReuseParity:
    def test_derived_closures_match_cold_runs_bit_for_bit(
        self, boosted_workload
    ):
        """The acceptance pin: default batch (partial reuse on) equals a
        cold per-task Summarizer exactly, and actually derived."""
        graph, tasks = boosted_workload
        cold = [
            Summarizer(graph, method="ST", lam=2.0).summarize(task)
            for task in tasks
        ]
        report = BatchSummarizer(graph, method="ST", lam=2.0).run(tasks)
        assert report.cache_patched > 0  # closures were derived, not fresh
        for expected, result in zip(cold, report.results):
            assert canonical(expected) == canonical(result.explanation)

    def test_backends_agree_bit_for_bit(self, boosted_workload):
        graph, tasks = boosted_workload
        reports = [
            BatchSummarizer(
                graph, method="ST", lam=2.0, parallel=backend, workers=2
            ).run(tasks)
            for backend in ("serial", "threads", "processes")
        ]
        assert reports[2].parallel == "processes"
        keys = [
            [canonical(r.explanation) for r in report.results]
            for report in reports
        ]
        assert keys[0] == keys[1] == keys[2]

    def test_lambda_sweep_stays_exact(self, boosted_workload):
        """Across the paper's λ sweep, derived == cold for every task."""
        graph, tasks = boosted_workload
        for lam in (0.01, 1.0, 100.0):
            cold = [
                Summarizer(graph, method="ST", lam=lam).summarize(task)
                for task in tasks
            ]
            report = BatchSummarizer(graph, method="ST", lam=lam).run(tasks)
            for expected, result in zip(cold, report.results):
                assert canonical(expected) == canonical(result.explanation)


class TestBoundedBaseRuns:
    def test_radius_bounded_run_is_complete_through_radius(self):
        graph = KnowledgeGraph.from_edges(
            [("u:%d" % (i % 5), "i:%d" % i, 1.0) for i in range(15)]
            + [("i:%d" % i, "e:g:%d" % (i % 2), 0.0, "g") for i in range(15)]
        )
        frozen = graph.freeze()
        unit = frozen.shared_unit_costs()
        full_dist, full_prev = dijkstra_indexed(frozen, 0, costs=unit)
        for radius in (0.0, 1.0, 2.0, 3.0):
            dist, prev = dijkstra_indexed(
                frozen, 0, costs=unit, radius=radius
            )
            expected = {n: d for n, d in full_dist.items() if d <= radius}
            assert dist == expected
            assert prev == {n: full_prev[n] for n in expected if n != 0}

    def test_cover_targets_finishes_the_tier(self):
        graph = KnowledgeGraph.from_edges(
            [("u:%d" % (i % 5), "i:%d" % i, 1.0) for i in range(15)]
            + [("i:%d" % i, "e:g:%d" % (i % 2), 0.0, "g") for i in range(15)]
        )
        frozen = graph.freeze()
        unit = frozen.shared_unit_costs()
        full_dist, _ = dijkstra_indexed(frozen, 0, costs=unit)
        target = max(full_dist, key=full_dist.get)
        plain, _ = dijkstra_indexed(
            frozen, 0, costs=unit, targets={target}
        )
        covered, _ = dijkstra_indexed(
            frozen, 0, costs=unit, targets={target}, cover_targets=True
        )
        bound = full_dist[target]
        assert covered == {
            n: d for n, d in full_dist.items() if d <= bound
        }
        assert set(plain) <= set(covered)
