"""Property-based tests: KnowledgeGraph mutation invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.knowledge_graph import KnowledgeGraph


@st.composite
def edge_ops(draw):
    """A sequence of add/remove operations over a small typed vocabulary."""
    ops = []
    num_ops = draw(st.integers(1, 40))
    for _ in range(num_ops):
        kind = draw(st.sampled_from(["add", "remove", "reweight"]))
        u = f"u:{draw(st.integers(0, 4))}"
        i = f"i:{draw(st.integers(0, 6))}"
        weight = draw(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False)
        )
        ops.append((kind, u, i, weight))
    return ops


class TestGraphInvariants:
    @given(edge_ops())
    @settings(max_examples=60, deadline=None)
    def test_edge_count_matches_iteration(self, ops):
        graph = KnowledgeGraph()
        reference: dict[tuple[str, str], float] = {}
        for kind, u, i, weight in ops:
            key = (u, i)
            if kind == "add":
                graph.add_edge(u, i, weight)
                reference[key] = weight
            elif kind == "remove" and key in reference:
                graph.remove_edge(u, i)
                del reference[key]
            elif kind == "reweight" and key in reference:
                graph.set_weight(u, i, weight)
                reference[key] = weight
        assert graph.num_edges == len(reference)
        assert sum(1 for _ in graph.edges()) == len(reference)
        for (u, i), weight in reference.items():
            assert graph.weight(u, i) == weight
            assert graph.weight(i, u) == weight

    @given(edge_ops())
    @settings(max_examples=40, deadline=None)
    def test_symmetry_of_adjacency(self, ops):
        graph = KnowledgeGraph()
        for kind, u, i, weight in ops:
            if kind == "add":
                graph.add_edge(u, i, weight)
        for node in graph.nodes():
            for neighbor in graph.neighbors(node):
                assert graph.has_edge(neighbor, node)

    @given(edge_ops())
    @settings(max_examples=40, deadline=None)
    def test_copy_equivalence(self, ops):
        graph = KnowledgeGraph()
        for kind, u, i, weight in ops:
            if kind == "add":
                graph.add_edge(u, i, weight)
        clone = graph.copy()
        assert set(clone.nodes()) == set(graph.nodes())
        assert sorted(e.key() for e in clone.edges()) == sorted(
            e.key() for e in graph.edges()
        )

    @given(edge_ops())
    @settings(max_examples=40, deadline=None)
    def test_remove_node_leaves_no_dangling_edges(self, ops):
        graph = KnowledgeGraph()
        for kind, u, i, weight in ops:
            if kind == "add":
                graph.add_edge(u, i, weight)
        nodes = list(graph.nodes())
        if not nodes:
            return
        victim = nodes[0]
        graph.remove_node(victim)
        assert victim not in graph
        for node in graph.nodes():
            assert victim not in graph.neighbors(node)
