"""Property-based parity: indexed Mehlhorn and PCST vs the dict oracles.

Same discipline as ``test_csr_properties.py``: the CSR-indexed twins
must be *identical* to the dict-based implementations — same edge sets,
same tie-broken trees — across randomized graphs and cost surfaces
(unit, stored-weight, and λ-boosted overrides patched onto the unit
base, the Eq. (1) shape).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.mehlhorn import (
    mehlhorn_steiner_tree,
    mehlhorn_steiner_tree_indexed,
)
from repro.graph.pcst import grow_prune_pcst, paper_pcst
from repro.graph.shortest_paths import (
    dijkstra_multi_source,
    dijkstra_multi_source_frozen,
)

from tests.properties.test_csr_properties import build_random_kg

graph_params = st.tuples(
    st.integers(min_value=0, max_value=1000),  # seed
    st.integers(min_value=2, max_value=6),  # users
    st.integers(min_value=3, max_value=12),  # items
)

UNIFORM = ("uniform", lambda u, v, w: 1.0)
STORED = ("stored", None)
BOOSTED = ("lambda-boosted", "boosted")  # built per-graph, see below


def canonical(graph):
    """Order-insensitive comparable form of a tree/forest."""
    return (
        sorted(graph.nodes()),
        sorted((e.source, e.target, e.weight) for e in graph.edges()),
    )


def make_cost_fn(named, graph, seed):
    """Materialize a named cost function, including random λ boosts."""
    name, fn = named
    if fn != "boosted":
        return fn
    rng = np.random.default_rng(seed + 13)
    edges = sorted((e.source, e.target) for e in graph.edges())
    discounts = {}
    for u, v in edges:
        if rng.random() < 0.3:
            boost = float(rng.uniform(0.1, 5.0))
            discounts[(u, v)] = 1.0 - 0.7 * boost / (1.0 + boost)

    def cost_fn(u, v, _w):
        key = (u, v) if u < v else (v, u)
        return discounts.get(key, 1.0)

    return cost_fn


def pick_terminals(graph, seed, count):
    nodes = sorted(graph.nodes())
    rng = np.random.default_rng(seed + 3)
    picks = rng.choice(len(nodes), size=min(count, len(nodes)), replace=False)
    return [nodes[int(p)] for p in picks]


class TestMultiSourceParity:
    @given(graph_params, st.sampled_from([UNIFORM, STORED, BOOSTED]))
    @settings(max_examples=30, deadline=None)
    def test_dist_prev_origin_identical(self, params, named_cost):
        seed, num_users, num_items = params
        graph = build_random_kg(seed, num_users, num_items)
        cost_fn = make_cost_fn(named_cost, graph, seed)
        frozen = graph.freeze()
        costs = None if cost_fn is None else frozen.costs_from(cost_fn)
        sources = pick_terminals(graph, seed, 4)
        dict_dist, dict_prev, dict_origin = dijkstra_multi_source(
            graph, sources, cost_fn=cost_fn
        )
        dist, prev, origin = dijkstra_multi_source_frozen(
            frozen, sources, costs=costs
        )
        assert dist == dict_dist
        assert prev == dict_prev
        assert origin == dict_origin
        # Settle order (dict insertion order), not just contents.
        assert list(dist) == list(dict_dist)


class TestMehlhornParity:
    @given(graph_params, st.sampled_from([UNIFORM, STORED, BOOSTED]))
    @settings(max_examples=30, deadline=None)
    def test_trees_identical(self, params, named_cost):
        seed, num_users, num_items = params
        graph = build_random_kg(seed, num_users, num_items)
        cost_fn = make_cost_fn(named_cost, graph, seed)
        frozen = graph.freeze()
        costs = None if cost_fn is None else frozen.costs_from(cost_fn)
        terminals = pick_terminals(graph, seed, 5)
        dict_tree = mehlhorn_steiner_tree(graph, terminals, cost_fn=cost_fn)
        csr_tree = mehlhorn_steiner_tree_indexed(
            graph, frozen, terminals, costs=costs
        )
        assert canonical(dict_tree) == canonical(csr_tree)

    @given(graph_params)
    @settings(max_examples=20, deadline=None)
    def test_frozen_kwarg_dispatch(self, params):
        seed, num_users, num_items = params
        graph = build_random_kg(seed, num_users, num_items)
        frozen = graph.freeze()
        terminals = pick_terminals(graph, seed, 4)
        cost_fn = UNIFORM[1]
        via_kwarg = mehlhorn_steiner_tree(
            graph,
            terminals,
            cost_fn=cost_fn,
            frozen=frozen,
            slot_costs=frozen.costs_from(cost_fn),
        )
        dict_tree = mehlhorn_steiner_tree(graph, terminals, cost_fn=cost_fn)
        assert canonical(via_kwarg) == canonical(dict_tree)


class TestPCSTParity:
    @given(
        graph_params,
        st.integers(min_value=1, max_value=6),
        st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_forests_identical_unit_costs(self, params, num_terminals, prune):
        seed, num_users, num_items = params
        graph = build_random_kg(seed, num_users, num_items)
        frozen = graph.freeze()
        terminals = pick_terminals(graph, seed, num_terminals)
        prizes = {t: 1.0 for t in terminals}
        dict_forest = paper_pcst(
            graph, prizes, prune_zero_prize_leaves=prune, seeds=terminals
        )
        csr_forest = paper_pcst(
            graph,
            prizes,
            prune_zero_prize_leaves=prune,
            seeds=terminals,
            frozen=frozen,
        )
        assert canonical(dict_forest) == canonical(csr_forest)

    @given(graph_params, st.sampled_from([UNIFORM, BOOSTED]))
    @settings(max_examples=20, deadline=None)
    def test_forests_identical_weighted_costs(self, params, named_cost):
        seed, num_users, num_items = params
        graph = build_random_kg(seed, num_users, num_items)
        cost_fn = make_cost_fn(named_cost, graph, seed)
        frozen = graph.freeze()
        terminals = pick_terminals(graph, seed, 4)
        # Side prizes exercise the unsettled-positive bookkeeping.
        prizes = {t: 1.0 for t in terminals}
        for node in sorted(graph.nodes())[::4]:
            prizes.setdefault(node, 0.25)
        dict_forest = paper_pcst(
            graph, prizes, cost_fn=cost_fn, seeds=terminals
        )
        csr_forest = paper_pcst(
            graph,
            prizes,
            cost_fn=cost_fn,
            seeds=terminals,
            frozen=frozen,
            slot_costs=frozen.costs_from(cost_fn),
        )
        assert canonical(dict_forest) == canonical(csr_forest)

    @given(graph_params, st.integers(min_value=1, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_strong_pruning_identical(self, params, num_terminals):
        seed, num_users, num_items = params
        graph = build_random_kg(seed, num_users, num_items)
        frozen = graph.freeze()
        terminals = pick_terminals(graph, seed, num_terminals)
        prizes = {t: 1.0 for t in terminals}
        dict_forest = grow_prune_pcst(graph, prizes, seeds=terminals)
        csr_forest = grow_prune_pcst(
            graph, prizes, seeds=terminals, frozen=frozen
        )
        assert canonical(dict_forest) == canonical(csr_forest)
