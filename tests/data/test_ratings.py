"""RatingMatrix storage and queries."""

import numpy as np
import pytest

from repro.data.ratings import Rating, RatingMatrix


@pytest.fixture
def matrix() -> RatingMatrix:
    return RatingMatrix.from_records(
        num_users=3,
        num_items=4,
        records=[
            (0, 0, 5.0, 10.0),
            (0, 1, 3.0, 20.0),
            (1, 1, 4.0, 30.0),
            (2, 3, 2.0, 40.0),
        ],
    )


class TestConstruction:
    def test_counts(self, matrix):
        assert matrix.num_ratings == 4
        assert matrix.num_users == 3
        assert matrix.num_items == 4

    def test_duplicate_pairs_rejected(self):
        with pytest.raises(ValueError):
            RatingMatrix.from_records(
                2, 2, [(0, 0, 5.0, 1.0), (0, 0, 3.0, 2.0)]
            )

    def test_out_of_range_user_rejected(self):
        with pytest.raises(ValueError):
            RatingMatrix.from_records(1, 2, [(5, 0, 5.0, 1.0)])

    def test_out_of_range_item_rejected(self):
        with pytest.raises(ValueError):
            RatingMatrix.from_records(2, 1, [(0, 5, 5.0, 1.0)])

    def test_nonpositive_rating_rejected(self):
        with pytest.raises(ValueError):
            RatingMatrix.from_records(1, 1, [(0, 0, 0.0, 1.0)])

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            RatingMatrix(
                1,
                1,
                np.array([0]),
                np.array([0]),
                np.array([5.0]),
                np.array([1.0, 2.0]),
            )

    def test_empty_matrix(self):
        matrix = RatingMatrix.from_records(2, 2, [])
        assert matrix.num_ratings == 0
        assert matrix.max_timestamp == 0.0


class TestQueries:
    def test_get_present(self, matrix):
        assert matrix.get(0, 0) == (5.0, 10.0)

    def test_get_absent_is_zero_pair(self, matrix):
        assert matrix.get(2, 0) == (0.0, 0.0)

    def test_has_rating(self, matrix):
        assert matrix.has_rating(1, 1)
        assert not matrix.has_rating(1, 0)

    def test_user_items(self, matrix):
        assert matrix.user_items(0) == [0, 1]
        assert matrix.user_items(2) == [3]

    def test_item_users(self, matrix):
        assert matrix.item_users(1) == [0, 1]
        assert matrix.item_users(2) == []

    def test_user_ratings_records(self, matrix):
        records = matrix.user_ratings(0)
        assert records[0] == Rating(0, 0, 5.0, 10.0)
        assert len(records) == 2

    def test_iter_ratings_covers_all(self, matrix):
        assert len(list(matrix.iter_ratings())) == 4

    def test_max_timestamp(self, matrix):
        assert matrix.max_timestamp == 40.0


class TestAggregates:
    def test_item_popularity(self, matrix):
        popularity = matrix.item_popularity()
        assert popularity.tolist() == [1, 2, 0, 1]

    def test_user_activity(self, matrix):
        assert matrix.user_activity().tolist() == [2, 1, 1]

    def test_to_dense(self, matrix):
        dense = matrix.to_dense()
        assert dense.shape == (3, 4)
        assert dense[0, 0] == 5.0
        assert dense[2, 2] == 0.0
