"""ML1M-like generator: scale, shape and determinism."""

import numpy as np
import pytest

from repro.data.movielens import (
    ML1M_ITEMS,
    ML1M_USERS,
    MovieLensSpec,
    generate_ml1m_like,
)


class TestSpec:
    def test_full_scale_sizes(self):
        spec = MovieLensSpec(scale=1.0)
        assert spec.num_users == ML1M_USERS
        assert spec.num_items == ML1M_ITEMS

    def test_scaled_sizes(self):
        spec = MovieLensSpec(scale=0.1)
        assert spec.num_users == round(ML1M_USERS * 0.1)

    def test_rating_count_capped_by_pair_universe(self):
        spec = MovieLensSpec(scale=0.01)
        assert spec.num_ratings <= spec.num_users * spec.num_items // 4

    def test_minimum_population(self):
        spec = MovieLensSpec(scale=1e-6)
        assert spec.num_users >= 8
        assert spec.num_items >= 8


class TestGeneration:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_ml1m_like(MovieLensSpec(scale=0.02, seed=5))

    def test_matches_spec(self, dataset):
        assert dataset.num_users == dataset.spec.num_users
        assert dataset.num_items == dataset.spec.num_items

    def test_rating_values_in_range(self, dataset):
        for _, _, rating, _ in dataset.ratings.iter_ratings():
            assert 1.0 <= rating <= 5.0

    def test_every_user_has_a_rating(self, dataset):
        activity = dataset.ratings.user_activity()
        assert activity.min() >= 1

    def test_popularity_is_long_tailed(self, dataset):
        popularity = np.sort(dataset.ratings.item_popularity())[::-1]
        top_decile = popularity[: max(1, len(popularity) // 10)].sum()
        assert top_decile > 0.2 * popularity.sum()

    def test_gender_attribute_present(self, dataset):
        assert set(np.unique(dataset.user_gender)) <= {"M", "F"}
        assert len(dataset.user_gender) == dataset.num_users

    def test_male_majority_like_ml1m(self, dataset):
        male_share = (dataset.user_gender == "M").mean()
        assert 0.55 < male_share < 0.9

    def test_deterministic(self):
        a = generate_ml1m_like(MovieLensSpec(scale=0.01, seed=9))
        b = generate_ml1m_like(MovieLensSpec(scale=0.01, seed=9))
        assert list(a.ratings.iter_ratings()) == list(b.ratings.iter_ratings())

    def test_different_seeds_differ(self):
        a = generate_ml1m_like(MovieLensSpec(scale=0.01, seed=1))
        b = generate_ml1m_like(MovieLensSpec(scale=0.01, seed=2))
        assert list(a.ratings.iter_ratings()) != list(b.ratings.iter_ratings())

    def test_timestamps_within_window(self, dataset):
        window = dataset.spec.rating_window_years * 365 * 24 * 3600
        for _, _, _, timestamp in dataset.ratings.iter_ratings():
            assert 0.0 <= timestamp <= window
