"""User and item sampling schemes (§V-A)."""

import numpy as np
import pytest

from repro.data.sampling import (
    sample_items_by_popularity,
    sample_users_balanced,
)


class TestUserSampling:
    @pytest.fixture
    def population(self):
        rng = np.random.default_rng(0)
        gender = np.where(rng.random(400) < 0.7, "M", "F")
        activity = rng.lognormal(0, 1, 400)
        return gender, activity, rng

    def test_balanced_counts(self, population):
        gender, activity, rng = population
        users = sample_users_balanced(gender, activity, 20, rng)
        sampled_gender = gender[users]
        assert (sampled_gender == "M").sum() == 20
        assert (sampled_gender == "F").sum() == 20

    def test_no_duplicates(self, population):
        gender, activity, rng = population
        users = sample_users_balanced(gender, activity, 30, rng)
        assert len(set(users)) == len(users)

    def test_small_pool_takes_everyone(self):
        gender = np.array(["M", "M", "F"])
        activity = np.array([1.0, 2.0, 3.0])
        users = sample_users_balanced(
            gender, activity, 10, np.random.default_rng(0)
        )
        assert sorted(users) == [0, 1, 2]

    def test_activity_distribution_preserved(self, population):
        """Stratified sampling keeps the activity mean close to the
        population mean (that's its purpose)."""
        gender, activity, rng = population
        users = sample_users_balanced(gender, activity, 50, rng)
        sampled_mean = activity[users].mean()
        assert sampled_mean == pytest.approx(activity.mean(), rel=0.35)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            sample_users_balanced(
                np.array(["M"]),
                np.array([1.0, 2.0]),
                1,
                np.random.default_rng(0),
            )


class TestItemSampling:
    def test_popular_and_unpopular_buckets(self):
        popularity = np.array([100, 5, 50, 1, 75, 2, 60, 3])
        popular, unpopular = sample_items_by_popularity(popularity, 2)
        assert set(popular) == {0, 4}
        assert set(unpopular) == {3, 5}

    def test_min_ratings_filter(self):
        popularity = np.array([10, 0, 5, 0, 3])
        popular, unpopular = sample_items_by_popularity(
            popularity, 2, min_ratings=1
        )
        assert 1 not in unpopular
        assert 3 not in unpopular

    def test_buckets_disjoint(self):
        popularity = np.arange(1, 41)
        popular, unpopular = sample_items_by_popularity(popularity, 10)
        assert not set(popular) & set(unpopular)

    def test_all_unrated_raises(self):
        with pytest.raises(ValueError):
            sample_items_by_popularity(np.zeros(5), 2)

    def test_tiny_pool_halves(self):
        popularity = np.array([5, 1, 3])
        popular, unpopular = sample_items_by_popularity(popularity, 10)
        assert len(popular) == len(unpopular) == 1
