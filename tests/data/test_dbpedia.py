"""Synthetic DBpedia-style knowledge attachment."""

import numpy as np
import pytest

from repro.data.dbpedia import (
    ExternalSchema,
    attach_external_knowledge,
    attach_to_items,
)
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.types import EdgeType, NodeType


@pytest.fixture
def item_graph() -> KnowledgeGraph:
    graph = KnowledgeGraph()
    for i in range(30):
        graph.add_node(f"i:{i}")
    graph.add_edge("u:0", "i:0", 5.0)
    return graph


class TestAttachment:
    def test_adds_external_nodes_and_edges(self, item_graph):
        attach_external_knowledge(
            item_graph, ExternalSchema.movies(), np.random.default_rng(0)
        )
        externals = list(item_graph.nodes_of_type(NodeType.EXTERNAL))
        assert externals
        knowledge_edges = [
            e for e in item_graph.edges() if e.type is EdgeType.KNOWLEDGE
        ]
        assert knowledge_edges

    def test_external_edges_carry_zero_weight(self, item_graph):
        attach_external_knowledge(
            item_graph, ExternalSchema.movies(), np.random.default_rng(0)
        )
        for edge in item_graph.edges():
            if edge.type is EdgeType.KNOWLEDGE:
                assert edge.weight == 0.0

    def test_relations_recorded(self, item_graph):
        attach_external_knowledge(
            item_graph, ExternalSchema.movies(), np.random.default_rng(0)
        )
        relations = {
            e.relation
            for e in item_graph.edges()
            if e.type is EdgeType.KNOWLEDGE
        }
        assert "genre" in relations
        assert "director" in relations

    def test_every_item_gets_required_relations(self, item_graph):
        attach_external_knowledge(
            item_graph, ExternalSchema.movies(), np.random.default_rng(1)
        )
        for i in range(30):
            neighbors = item_graph.neighbors(f"i:{i}")
            kinds = {
                item_graph.relation(f"i:{i}", n)
                for n in neighbors
                if NodeType.of(n) is NodeType.EXTERNAL
            }
            # director has entities_per_item = 1.0, so it's guaranteed.
            assert "director" in kinds

    def test_entities_are_shared_across_items(self, item_graph):
        attach_external_knowledge(
            item_graph, ExternalSchema.movies(), np.random.default_rng(2)
        )
        genre_nodes = [
            n
            for n in item_graph.nodes_of_type(NodeType.EXTERNAL)
            if n.startswith("e:genre:")
        ]
        degrees = [item_graph.degree(n) for n in genre_nodes]
        assert max(degrees) >= 2  # sharing is the whole point

    def test_names_assigned(self, item_graph):
        attach_external_knowledge(
            item_graph, ExternalSchema.movies(), np.random.default_rng(3)
        )
        external = next(iter(item_graph.nodes_of_type(NodeType.EXTERNAL)))
        assert item_graph.name(external) != external

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            attach_external_knowledge(
                KnowledgeGraph(),
                ExternalSchema.movies(),
                np.random.default_rng(0),
            )

    def test_music_schema_relations(self, item_graph):
        attach_external_knowledge(
            item_graph, ExternalSchema.music(), np.random.default_rng(0)
        )
        relations = {
            e.relation
            for e in item_graph.edges()
            if e.type is EdgeType.KNOWLEDGE
        }
        assert "artist" in relations


class TestAttachToItems:
    def test_triples_shape(self):
        triples = attach_to_items(
            10, ExternalSchema.movies(), np.random.default_rng(0)
        )
        assert triples
        for item, external, relation in triples:
            assert item.startswith("i:")
            assert external.startswith("e:")
            assert relation
