"""Deterministic entity naming."""

from repro.data.namegen import entity_name, movie_name, track_name, user_name


class TestEntityNames:
    def test_genre_names(self):
        assert entity_name("genre", 0) == "Genre: Drama"

    def test_genre_overflow_suffix(self):
        name = entity_name("genre", 1000)
        assert name.startswith("Genre: ")
        assert name != entity_name("genre", 0)

    def test_person_kinds(self):
        assert entity_name("director", 0).startswith("Director: ")
        assert entity_name("actor", 3).startswith("Actor: ")
        assert entity_name("artist", 5).startswith("Artist: ")

    def test_unknown_kind_fallback(self):
        assert entity_name("studio", 7) == "Studio #7"

    def test_deterministic(self):
        assert entity_name("actor", 12) == entity_name("actor", 12)

    def test_distinct_indices_distinct_names_for_people(self):
        names = {entity_name("director", i) for i in range(200)}
        assert len(names) == 200

    def test_country_and_decade(self):
        assert entity_name("country", 0) == "Country: Greece"
        assert entity_name("decade", 2) == "Decade: 1970s"


class TestOtherNames:
    def test_movie_track_user(self):
        assert movie_name(3) == "Movie #3"
        assert track_name(4) == "Track #4"
        assert user_name(5) == "User 5"
