"""LFM1M-like generator."""

import numpy as np
import pytest

from repro.data.lastfm import (
    LFM1M_TRACKS,
    LFM1M_USERS,
    LastFMSpec,
    generate_lfm1m_like,
)
from repro.data.movielens import MovieLensSpec, generate_ml1m_like


class TestSpec:
    def test_full_scale_sizes(self):
        spec = LastFMSpec(scale=1.0)
        assert spec.num_users == LFM1M_USERS
        assert spec.num_items == LFM1M_TRACKS

    def test_rating_cap(self):
        spec = LastFMSpec(scale=0.01)
        assert spec.num_ratings <= spec.num_users * spec.num_items // 4


class TestGeneration:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_lfm1m_like(LastFMSpec(scale=0.01, seed=3))

    def test_matches_spec(self, dataset):
        assert dataset.num_users == dataset.spec.num_users
        assert dataset.num_items == dataset.spec.num_items

    def test_implicit_ratings_positive(self, dataset):
        for _, _, rating, _ in dataset.ratings.iter_ratings():
            assert rating >= 1.0

    def test_deterministic(self):
        a = generate_lfm1m_like(LastFMSpec(scale=0.008, seed=4))
        b = generate_lfm1m_like(LastFMSpec(scale=0.008, seed=4))
        assert list(a.ratings.iter_ratings()) == list(b.ratings.iter_ratings())

    def test_steeper_tail_than_movielens(self):
        """LFM's popularity exponent is higher: its head should hold a
        larger popularity share than ML1M's at equal sizes."""
        ml = generate_ml1m_like(MovieLensSpec(scale=0.02, seed=8))
        lfm = generate_lfm1m_like(LastFMSpec(scale=0.015, seed=8))

        def head_share(ds):
            popularity = np.sort(ds.ratings.item_popularity())[::-1]
            head = popularity[: max(1, len(popularity) // 20)].sum()
            return head / popularity.sum()

        assert head_share(lfm) > head_share(ml)

    def test_items_outnumber_users_like_lfm(self, dataset):
        assert dataset.num_items > dataset.num_users
