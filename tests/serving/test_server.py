"""The network front door: parity, streaming, admission, resilience.

The acceptance contract for :mod:`repro.serving.server`:

- a client over TCP gets summaries bit-identical to an in-process
  ``ExplanationSession`` — across all four methods and every
  backend x scheduler combination;
- ``stream`` frames arrive per task, the moment the scheduler yields
  each result — not after the whole batch;
- past the admission bound the server answers with a typed
  ``overloaded`` error frame immediately instead of queueing without
  bound;
- transport/protocol violations (oversized frame, truncated frame,
  malformed JSON, unknown version/kind/graph) produce typed error
  frames or a clean close, never a hang;
- the client reconnects transparently after a server restart;
- mutation RPCs invalidate the server-side session exactly like
  in-process graph edits;
- the idle reaper releases pooled resources after the TTL and the
  session rebuilds them on the next request.
"""

import json
import socket
import struct
import threading
import time

import pytest

from repro.api import (
    ExplanationSession,
    MethodSpec,
    ParallelConfig,
    SchedulerConfig,
    SummaryRequest,
    register_method,
    unregister_method,
)
from repro.api import protocol
from repro.core.scenarios import Scenario, SummaryTask
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.serving.client import (
    ExplanationClient,
    OverloadedError,
    ServerError,
)
from repro.serving.frames import read_frame, write_frame
from repro.serving.server import (
    ExplanationServer,
    ServerConfig,
    ServerThread,
)


def assert_same_summary(got, want):
    """Bit-identity for results that crossed the wire (task by value)."""
    g, w = got.subgraph, want.subgraph
    assert list(g.nodes()) == list(w.nodes())
    for node in w.nodes():
        assert list(g.neighbors(node).items()) == (
            list(w.neighbors(node).items())
        ), node
    assert list(g._names.items()) == list(w._names.items())
    assert list(g._relations.items()) == list(w._relations.items())
    assert g.num_edges == w.num_edges
    assert g.version == w.version
    assert got.method == want.method
    assert got.params == want.params
    assert got.task == want.task


@pytest.fixture(scope="module")
def mixed_requests(test_bench):
    """Two tasks per method: methods x tasks in one batch."""
    tasks = list(
        test_bench.tasks(Scenario.USER_CENTRIC, "PGPR", 3).values()
    )[:2]
    return [
        SummaryRequest(task=task, method=method)
        for method in ("st", "st-fast", "pcst", "union")
        for task in tasks
    ]


@pytest.fixture(scope="module")
def serial_reference(test_bench, mixed_requests):
    with ExplanationSession(test_bench.graph) as session:
        return session.run(mixed_requests)


@pytest.fixture(scope="module")
def server(test_bench):
    with ServerThread(ExplanationServer(test_bench.graph)) as thread:
        yield thread


@pytest.fixture()
def client(server):
    with ExplanationClient("127.0.0.1", server.port) as c:
        yield c


class TestBasics:
    def test_ping_and_methods(self, client):
        assert client.ping() == ["default"]
        methods = client.methods()
        assert {"st", "st-fast", "pcst", "union"} <= set(methods)

    def test_unknown_graph_is_typed(self, server):
        with ExplanationClient(
            "127.0.0.1", server.port, graph="no-such-graph"
        ) as c:
            with pytest.raises(ServerError) as excinfo:
                c.stats()
            assert excinfo.value.code == "unknown-graph"

    def test_stats_counts_frames(self, client, test_bench):
        task = next(
            iter(test_bench.tasks(Scenario.USER_CENTRIC, "PGPR", 3).values())
        )
        client.explain(task)
        stats = client.stats()
        assert stats["server"]["frames_in"] >= 2
        assert stats["session"]["tasks"] >= 1
        assert stats["pending"] == 0


class TestParity:
    """TCP results == in-process results, bit for bit."""

    def test_explain_all_methods(self, client, test_bench, mixed_requests):
        for request in mixed_requests:
            with ExplanationSession(test_bench.graph) as session:
                want = session.explain(request)
            got = client.explain(request)
            assert_same_summary(got, want)
            # Same task *object*: the client decodes against the task
            # it sent, so identity survives the round trip.
            assert got.task is request.task

    @pytest.mark.parametrize(
        ("backend", "mode"),
        [
            ("serial", "work-stealing"),
            ("threads", "work-stealing"),
            ("threads", "chunked"),
            ("processes", "work-stealing"),
            ("processes", "chunked"),
        ],
    )
    def test_run_and_stream_parity(
        self, backend, mode, test_bench, mixed_requests, serial_reference
    ):
        server = ExplanationServer(
            test_bench.graph,
            parallel=ParallelConfig(backend=backend, workers=2),
            scheduler=SchedulerConfig(mode=mode),
        )
        with ServerThread(server) as thread:
            with ExplanationClient("127.0.0.1", thread.port) as client:
                report = client.run(mixed_requests)
                streamed = sorted(
                    client.stream(mixed_requests), key=lambda r: r.index
                )
        assert report.parallel == backend
        if backend != "serial":
            assert report.scheduler == mode
        assert len(report.results) == len(mixed_requests)
        for want, got in zip(serial_reference.results, report.results):
            assert got.index == want.index
            assert_same_summary(got.explanation, want.explanation)
        for want, got in zip(serial_reference.results, streamed):
            assert got.index == want.index
            assert_same_summary(got.explanation, want.explanation)

    def test_report_survives_the_wire_losslessly(
        self, client, mixed_requests, serial_reference
    ):
        # The server session is warm (shared across this module), so
        # cache counters differ from a cold reference — but the report
        # decodes with every field populated and the same results.
        report = client.run(mixed_requests)
        assert report.method == serial_reference.method
        assert report.parallel == serial_reference.parallel
        assert report.total_seconds > 0
        assert report.cache_hits + report.cache_misses >= 0
        assert len(report.results) == len(serial_reference.results)
        for want, got in zip(serial_reference.results, report.results):
            assert_same_summary(got.explanation, want.explanation)


class _Sleepy:
    """Test summarizer: delay smuggled through ``task.k`` (k - 10)/10."""

    def __init__(self, graph):
        self.graph = graph

    def summarize(self, task):
        from repro.core.explanation import SubgraphExplanation

        time.sleep((task.k - 10) / 10.0)
        subgraph = KnowledgeGraph()
        subgraph.add_node(task.terminals[0])
        return SubgraphExplanation(
            subgraph=subgraph, task=task, method="Sleepy"
        )


@pytest.fixture()
def sleepy_method():
    register_method(
        MethodSpec(
            name="sleepy",
            legacy_name="Sleepy",
            builder=lambda graph, config, cache: _Sleepy(graph),
            uses_traversal=False,
        )
    )
    try:
        yield
    finally:
        unregister_method("sleepy")


def _sleepy_request(tenths: int) -> SummaryRequest:
    return SummaryRequest(
        task=SummaryTask(
            scenario=Scenario.USER_CENTRIC,
            terminals=("u:0",),
            paths=(),
            anchors=(),
            focus=(),
            k=10 + tenths,
        ),
        method="sleepy",
    )


class TestStreaming:
    def test_results_arrive_per_task_not_per_batch(self, sleepy_method):
        """The first frame lands while later tasks are still asleep.

        Two workers, four tasks: 0.5s, then three instant ones. With
        per-task framing the instant results arrive while task 0 is
        still sleeping; per-batch framing would hold everything for
        >= 0.5s.
        """
        requests = [_sleepy_request(5)] + [_sleepy_request(0)] * 3
        server = ExplanationServer(
            KnowledgeGraph(),
            parallel=ParallelConfig(backend="threads", workers=2),
        )
        with ServerThread(server) as thread:
            with ExplanationClient("127.0.0.1", thread.port) as client:
                start = time.monotonic()
                arrivals = [
                    (result.index, time.monotonic() - start)
                    for result in client.stream(requests)
                ]
        order = [index for index, _ in arrivals]
        assert sorted(order) == [0, 1, 2, 3]
        assert order[-1] == 0  # the sleeper finishes last...
        first_elapsed = arrivals[0][1]
        assert first_elapsed < 0.4, (
            f"first frame took {first_elapsed:.3f}s — results were "
            "batched, not streamed per task"
        )

    def test_concurrent_clients_interleave_bit_identical(
        self, server, test_bench, mixed_requests, serial_reference
    ):
        """Two clients streaming at once don't corrupt each other."""
        outputs: dict[str, list] = {}
        errors: list = []

        def consume(name: str) -> None:
            try:
                with ExplanationClient("127.0.0.1", server.port) as c:
                    outputs[name] = sorted(
                        c.stream(mixed_requests), key=lambda r: r.index
                    )
            except BaseException as error:  # surfaced in the main thread
                errors.append(error)

        threads = [
            threading.Thread(target=consume, args=(name,))
            for name in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        for name in ("a", "b"):
            results = outputs[name]
            assert len(results) == len(mixed_requests)
            for want, got in zip(serial_reference.results, results):
                assert got.index == want.index
                assert_same_summary(got.explanation, want.explanation)


class TestAdmissionControl:
    def test_overload_returns_typed_frame_immediately(self, sleepy_method):
        server = ExplanationServer(
            KnowledgeGraph(), ServerConfig(max_pending=1)
        )
        with ServerThread(server) as thread:
            busy_done = threading.Event()

            def occupy() -> None:
                with ExplanationClient("127.0.0.1", thread.port) as c:
                    c.explain(_sleepy_request(10))  # holds the slot 1s
                busy_done.set()

            occupier = threading.Thread(target=occupy)
            occupier.start()
            try:
                deadline = time.monotonic() + 5.0
                with ExplanationClient("127.0.0.1", thread.port) as c:
                    # Wait until the slow request is actually admitted.
                    while c.stats()["pending"] == 0:
                        assert time.monotonic() < deadline
                        time.sleep(0.01)
                    start = time.monotonic()
                    with pytest.raises(OverloadedError) as excinfo:
                        c.explain(_sleepy_request(0))
                    elapsed = time.monotonic() - start
                assert excinfo.value.code == "overloaded"
                # Rejected up front — not after the in-flight request.
                assert elapsed < 0.5, f"overload answer took {elapsed:.2f}s"
            finally:
                occupier.join(timeout=30)
            assert busy_done.is_set()
            assert server.rejected >= 1

    def test_slot_frees_after_completion(self, sleepy_method):
        server = ExplanationServer(
            KnowledgeGraph(), ServerConfig(max_pending=1)
        )
        with ServerThread(server) as thread:
            with ExplanationClient("127.0.0.1", thread.port) as c:
                c.explain(_sleepy_request(0))
                c.explain(_sleepy_request(0))  # would fail if slot leaked
                assert c.stats()["pending"] == 0


class TestTransportEdgeCases:
    """Hand-crafted bytes against the raw socket."""

    @pytest.fixture()
    def small_frame_server(self, test_bench):
        server = ExplanationServer(
            test_bench.graph, ServerConfig(max_frame_bytes=4096)
        )
        with ServerThread(server) as thread:
            yield thread

    def _raw(self, port: int) -> socket.socket:
        sock = socket.create_connection(("127.0.0.1", port), timeout=10)
        sock.settimeout(10)
        return sock

    def test_oversized_frame_rejected_before_payload(
        self, small_frame_server
    ):
        with self._raw(small_frame_server.port) as sock:
            # Declare 1 MiB against a 4 KiB bound; send no payload at
            # all — the server must answer from the prefix alone.
            sock.sendall(struct.pack("!I", 1 << 20))
            frame = json.loads(read_frame(sock).decode())
            assert frame["kind"] == "error"
            assert frame["code"] == "frame-too-large"
            # ...and then hang up (the payload is unskippable).
            assert sock.recv(1) == b""

    def test_truncated_frame_closes_cleanly(self, small_frame_server):
        with self._raw(small_frame_server.port) as sock:
            sock.sendall(struct.pack("!I", 100) + b"x" * 10)
            sock.shutdown(socket.SHUT_WR)
            assert sock.recv(1) == b""  # no error frame, no hang

    def test_malformed_json_gets_typed_error(self, small_frame_server):
        with self._raw(small_frame_server.port) as sock:
            write_frame(sock, b"{this is not json")
            frame = json.loads(read_frame(sock).decode())
            assert frame["kind"] == "error"
            assert frame["code"] == "bad-frame"
            # The connection survives a protocol-level error.
            write_frame(
                sock,
                json.dumps(protocol.envelope("ping")).encode(),
            )
            assert json.loads(read_frame(sock).decode())["kind"] == "pong"

    def test_unknown_protocol_version(self, small_frame_server):
        with self._raw(small_frame_server.port) as sock:
            write_frame(
                sock,
                json.dumps({"protocol_version": 99, "kind": "ping"}).encode(),
            )
            frame = json.loads(read_frame(sock).decode())
            assert frame["kind"] == "error"
            assert frame["code"] == "unknown-version"

    def test_unknown_kind(self, small_frame_server):
        with self._raw(small_frame_server.port) as sock:
            write_frame(
                sock,
                json.dumps(protocol.envelope("make-coffee")).encode(),
            )
            frame = json.loads(read_frame(sock).decode())
            assert frame["kind"] == "error"
            assert frame["code"] == "bad-request"

    def test_task_error_is_typed(self, client):
        # Disconnected terminals: the summarizer raises; the client
        # sees a typed task-error, and the connection stays usable.
        bad = SummaryTask(
            scenario=Scenario.USER_CENTRIC,
            terminals=("u:0", "no-such-node"),
            paths=(),
            anchors=(),
            focus=(),
            k=1,
        )
        with pytest.raises(ServerError) as excinfo:
            client.explain(bad)
        assert excinfo.value.code in ("task-error", "internal")
        assert client.ping() == ["default"]


class TestReconnect:
    def test_client_survives_server_restart(self, test_bench):
        task = next(
            iter(test_bench.tasks(Scenario.USER_CENTRIC, "PGPR", 3).values())
        )
        first = ServerThread(ExplanationServer(test_bench.graph))
        port = first.port
        client = ExplanationClient("127.0.0.1", port)
        try:
            want = client.explain(task)
            first.stop()
            # Same port, fresh server: the old socket is dead and the
            # client's next call must transparently redial.
            second = ServerThread(
                ExplanationServer(
                    test_bench.graph, ServerConfig(port=port)
                )
            )
            try:
                got = client.explain(task)
                assert_same_summary(got, want)
            finally:
                second.stop()
        finally:
            client.close()
            first.stop()

    def test_no_reconnect_propagates(self, test_bench):
        thread = ServerThread(ExplanationServer(test_bench.graph))
        client = ExplanationClient(
            "127.0.0.1", thread.port, reconnect=False
        )
        try:
            assert client.ping() == ["default"]
            thread.stop()
            with pytest.raises((ConnectionError, OSError)):
                client.ping()
        finally:
            client.close()


class TestMutation:
    def test_mutation_invalidates_and_reflects(self, toy_graph):
        server = ExplanationServer(toy_graph)
        task = SummaryTask(
            scenario=Scenario.USER_CENTRIC,
            terminals=("u:0", "i:1"),
            paths=(),
            anchors=("i:1",),
            focus=("u:0",),
            k=1,
        )
        with ServerThread(server) as thread:
            with ExplanationClient("127.0.0.1", thread.port) as client:
                before = client.explain(task)
                version = client.add_edge("u:0", "i:1", 9.0, "watched")
                assert version == toy_graph.version
                after = client.explain(task)
                session = server._hosts["default"].session_if_created()
                assert session.stats.invalidations >= 1
                # The new direct edge must show up in the new summary.
                assert after.subgraph.relation("u:0", "i:1") == "watched"
                assert before.subgraph.num_edges != (
                    after.subgraph.num_edges
                ) or list(before.subgraph.nodes()) != (
                    list(after.subgraph.nodes())
                )

    def test_unknown_op_rejected(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.mutate([{"op": "drop_table", "args": []}])
        assert excinfo.value.code == "bad-request"

    def test_bad_edge_is_task_error(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.mutate([{"op": "add_edge", "args": ["u:0", "u:0"]}])
        assert excinfo.value.code == "task-error"


class TestIdleReaper:
    def test_pool_released_after_ttl_and_rebuilt_on_demand(
        self, test_bench
    ):
        tasks = list(
            test_bench.tasks(Scenario.USER_CENTRIC, "PGPR", 3).values()
        )[:3]
        server = ExplanationServer(
            test_bench.graph,
            ServerConfig(
                pool_idle_ttl_seconds=0.3, reap_interval_seconds=0.05
            ),
            parallel=ParallelConfig(backend="processes", workers=1),
        )
        with ServerThread(server) as thread:
            with ExplanationClient("127.0.0.1", thread.port) as client:
                report = client.run(tasks)
                assert report.parallel in ("processes", "threads", "serial")
                session = server._hosts["default"].session_if_created()
                had_pool = (
                    session._steal_pool is not None
                    or session._pool is not None
                    or session._export is not None
                )
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    if (
                        session._steal_pool is None
                        and session._pool is None
                        and session._export is None
                    ):
                        break
                    time.sleep(0.05)
                assert session._steal_pool is None
                assert session._pool is None
                assert session._export is None
                if had_pool:
                    pool_starts = session.stats.pool_starts
                    report2 = client.run(tasks)
                    assert len(report2.results) == len(tasks)
                    # A fresh pool was started for the post-reap run.
                    assert session.stats.pool_starts >= pool_starts
