"""Durability-layer coverage: WAL framing, recovery, compaction.

The acceptance contract for :mod:`repro.serving.journal`:

- a snapshot round-trips a mutable graph *bit-identically* — same node
  insertion order, same per-row neighbor order, same name/relation
  tables, same mutation ``version``, and therefore byte-equal frozen
  CSR arrays;
- truncating a journal at **every** byte boundary recovers exactly the
  records whose frames fit completely (the torn-tail property);
- a complete mid-file record with a damaged payload is a typed
  :class:`JournalCorruption`, never a silent skip;
- injected ``torn-write`` / ``truncated-journal`` faults leave damage
  that the next open repairs back to the last complete record;
- compaction folds the journal into the snapshot with no window where
  a mutation exists nowhere — a crash between snapshot and truncate
  replays into the version-skip path instead of double-applying.
"""

import json
import struct
import zlib

import pytest

from repro.api import protocol
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.serving.config import JournalConfig
from repro.serving.faults import Fault, FaultPlan, SimulatedCrash
from repro.serving.journal import (
    JOURNAL_NAME,
    SNAPSHOT_NAME,
    GraphJournal,
    JournalCorruption,
    JournalError,
    MutationJournal,
    apply_mutations,
    encode_record,
    load_snapshot,
    scan_journal,
    write_snapshot,
)

_HEADER = struct.Struct("!II")


def assert_bit_identical(got: KnowledgeGraph, want: KnowledgeGraph) -> None:
    """Same iteration orders, same version, byte-equal frozen arrays."""
    assert list(got.nodes()) == list(want.nodes())
    for node in want.nodes():
        assert list(got.neighbors(node).items()) == (
            list(want.neighbors(node).items())
        ), node
    assert list(got._names.items()) == list(want._names.items())
    assert list(got._relations.items()) == list(want._relations.items())
    assert got.num_edges == want.num_edges
    assert got.version == want.version
    g, w = got.freeze(), want.freeze()
    assert list(g.ids) == list(w.ids)
    assert list(g.offsets) == list(w.offsets)
    assert list(g.targets) == list(w.targets)
    assert list(g.weights) == list(w.weights)
    assert g.version == w.version


MUTATIONS = [
    [{"op": "add_edge", "args": ["u:0", "i:5", 2.5, ""]}],
    [{"op": "add_edge", "args": ["i:5", "e:genre:1", 0.0, "genre"]}],
    [
        {"op": "set_weight", "args": ["u:0", "i:0", 9.0]},
        {"op": "set_name", "args": ["i:5", "The Fifth Element"]},
    ],
    [{"op": "remove_edge", "args": ["u:0", "i:2"]}],
    [{"op": "add_node", "args": ["i:7", "Seven"]}],
    [{"op": "remove_node", "args": ["e:director:0"]}],
]


def mutated(graph: KnowledgeGraph, upto: int = len(MUTATIONS)):
    """Apply the first ``upto`` mutation batches to a copy-by-codec."""
    clone = protocol.graph_state_from_json(
        protocol.graph_state_to_json(graph)
    )
    for ops in MUTATIONS[:upto]:
        apply_mutations(clone, ops)
    return clone


class TestSnapshot:
    def test_round_trip_is_bit_identical(self, toy_graph, tmp_path):
        toy_graph.set_name("i:0", "Item Zero")
        path = tmp_path / SNAPSHOT_NAME
        write_snapshot(path, toy_graph)
        assert_bit_identical(load_snapshot(path), toy_graph)

    def test_missing_snapshot_is_none(self, tmp_path):
        assert load_snapshot(tmp_path / SNAPSHOT_NAME) is None

    def test_replace_is_atomic_no_tmp_left(self, toy_graph, tmp_path):
        path = tmp_path / SNAPSHOT_NAME
        write_snapshot(path, toy_graph)
        write_snapshot(path, mutated(toy_graph))
        assert sorted(p.name for p in tmp_path.iterdir()) == [SNAPSHOT_NAME]

    def test_junk_and_wrong_format_are_typed(self, toy_graph, tmp_path):
        path = tmp_path / SNAPSHOT_NAME
        path.write_bytes(b"\xff not json")
        with pytest.raises(JournalError):
            load_snapshot(path)
        path.write_text(json.dumps({"format": 999, "graph": {}}))
        with pytest.raises(JournalError):
            load_snapshot(path)


class TestScan:
    def journal_bytes(self) -> tuple[bytes, list[int]]:
        """A multi-record journal blob + each record's end offset."""
        blob = b""
        ends = []
        for version, ops in enumerate(MUTATIONS):
            blob += encode_record(version, ops)
            ends.append(len(blob))
        return blob, ends

    def test_every_byte_truncation_recovers_prefix(self, tmp_path):
        """Satellite 4: chop the file at every length; recovery lands
        on the last complete record, never on garbage, never raises."""
        blob, ends = self.journal_bytes()
        path = tmp_path / JOURNAL_NAME
        for cut in range(len(blob) + 1):
            path.write_bytes(blob[:cut])
            scan = scan_journal(path)
            complete = sum(1 for end in ends if end <= cut)
            assert len(scan.records) == complete, cut
            assert scan.clean_bytes == (
                ends[complete - 1] if complete else 0
            ), cut
            assert scan.torn_bytes == cut - scan.clean_bytes, cut
            for version, record in enumerate(scan.records):
                assert record == {
                    "version": version,
                    "ops": MUTATIONS[version],
                }

    def test_mid_file_corruption_is_typed(self, tmp_path):
        blob, ends = self.journal_bytes()
        # Flip one payload byte inside record 1; records 2.. stay valid
        # after it, so this cannot be explained as a torn tail.
        damaged = bytearray(blob)
        damaged[ends[0] + _HEADER.size + 2] ^= 0xFF
        path = tmp_path / JOURNAL_NAME
        path.write_bytes(bytes(damaged))
        with pytest.raises(JournalCorruption) as excinfo:
            scan_journal(path)
        assert excinfo.value.ordinal == 1
        assert excinfo.value.offset == ends[0]

    def test_valid_crc_but_undecodable_payload_is_typed(self, tmp_path):
        payload = b"\xfe\xfd not utf-8 json"
        frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        path = tmp_path / JOURNAL_NAME
        path.write_bytes(encode_record(0, MUTATIONS[0]) + frame)
        with pytest.raises(JournalCorruption) as excinfo:
            scan_journal(path)
        assert excinfo.value.ordinal == 1

    def test_non_record_json_is_typed(self, tmp_path):
        payload = json.dumps([1, 2, 3]).encode()
        frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        path = tmp_path / JOURNAL_NAME
        path.write_bytes(frame)
        with pytest.raises(JournalCorruption):
            scan_journal(path)

    def test_missing_file_is_empty(self, tmp_path):
        scan = scan_journal(tmp_path / JOURNAL_NAME)
        assert scan.records == ()
        assert scan.clean_bytes == 0 and scan.torn_bytes == 0


class TestMutationJournal:
    @pytest.mark.parametrize("fsync", ["always", "interval", "never"])
    def test_append_scan_round_trip(self, tmp_path, fsync):
        path = tmp_path / JOURNAL_NAME
        journal = MutationJournal(path, fsync=fsync)
        for version, ops in enumerate(MUTATIONS):
            assert journal.append(version, ops) == version
        journal.close()
        scan = scan_journal(path)
        assert [r["ops"] for r in scan.records] == MUTATIONS

    def test_reopen_truncates_torn_tail_and_resumes(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        journal = MutationJournal(path)
        journal.append(0, MUTATIONS[0])
        journal.close()
        with open(path, "ab") as fh:
            fh.write(b"\x00\x00\x01")  # torn header fragment
        reopened = MutationJournal(path)
        assert reopened.records == 1
        assert reopened.recovered_torn_bytes == 3
        reopened.append(1, MUTATIONS[1])
        reopened.close()
        assert [r["ops"] for r in scan_journal(path).records] == (
            MUTATIONS[:2]
        )

    def test_closed_journal_refuses_appends(self, tmp_path):
        journal = MutationJournal(tmp_path / JOURNAL_NAME)
        journal.close()
        journal.close()  # idempotent
        with pytest.raises(JournalError):
            journal.append(0, MUTATIONS[0])
        with pytest.raises(JournalError):
            journal.reset()

    def test_torn_write_fault_recovers_to_last_record(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        plan = FaultPlan(faults=(Fault(kind="torn-write", at=1),))
        journal = MutationJournal(path, faults=plan)
        journal.append(0, MUTATIONS[0])
        with pytest.raises(SimulatedCrash):
            journal.append(1, MUTATIONS[1])
        assert journal.closed  # nothing can be written past the damage
        reopened = MutationJournal(path)
        assert reopened.records == 1
        assert reopened.recovered_torn_bytes > 0
        reopened.close()

    def test_truncated_journal_fault_drops_unacked_tail(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        plan = FaultPlan(
            faults=(Fault(kind="truncated-journal", at=2, seconds=4),)
        )
        journal = MutationJournal(path, faults=plan)
        journal.append(0, MUTATIONS[0])
        journal.append(1, MUTATIONS[1])
        with pytest.raises(SimulatedCrash):
            journal.append(2, MUTATIONS[2])
        assert journal.closed
        reopened = MutationJournal(path)
        assert reopened.records == 2  # un-acked record vanished whole
        assert reopened.recovered_torn_bytes > 0
        reopened.close()

    def test_abort_keeps_flushed_appends(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        journal = MutationJournal(path, fsync="never")
        journal.append(0, MUTATIONS[0])
        journal.abort()  # kill -9: page cache survives, no fsync
        assert journal.closed
        assert [r["ops"] for r in scan_journal(path).records] == (
            MUTATIONS[:1]
        )


class TestGraphJournal:
    def test_first_boot_snapshots_the_seed(self, toy_graph, tmp_path):
        store = GraphJournal(tmp_path / "default", toy_graph)
        assert store.graph is toy_graph
        assert store.replayed_records == 0
        store.close()
        assert_bit_identical(
            load_snapshot(tmp_path / "default" / SNAPSHOT_NAME), toy_graph
        )

    def test_recovery_replays_to_bit_identity(self, toy_graph, tmp_path):
        want = mutated(toy_graph)
        store = GraphJournal(tmp_path / "default", toy_graph)
        for ops in MUTATIONS:
            store.apply(ops)
        assert_bit_identical(store.graph, want)
        store.abort()  # simulated hard kill: no final fsync
        recovered = GraphJournal(tmp_path / "default", KnowledgeGraph())
        assert recovered.replayed_records == len(MUTATIONS)
        assert_bit_identical(recovered.graph, want)
        recovered.close()

    def test_recovery_ignores_the_passed_seed(self, toy_graph, tmp_path):
        want = mutated(toy_graph, 1)
        store = GraphJournal(tmp_path / "default", toy_graph)
        store.apply(MUTATIONS[0])
        store.close()
        decoy = KnowledgeGraph()
        decoy.add_edge("u:9", "i:9", 1.0)
        recovered = GraphJournal(tmp_path / "default", decoy)
        assert_bit_identical(recovered.graph, want)
        recovered.close()

    def test_compact_folds_journal_into_snapshot(self, toy_graph, tmp_path):
        want = mutated(toy_graph)
        store = GraphJournal(tmp_path / "default", toy_graph)
        for ops in MUTATIONS:
            store.apply(ops)
        store.compact()
        assert store.journal.records == 0
        assert store.compactions == 1
        assert store.stats()["journal_records"] == 0
        store.close()
        recovered = GraphJournal(tmp_path / "default", KnowledgeGraph())
        assert recovered.replayed_records == 0  # snapshot owns it all
        assert_bit_identical(recovered.graph, want)
        recovered.close()

    def test_auto_compaction_threshold(self, toy_graph, tmp_path):
        config = JournalConfig(compact_every_records=3)
        store = GraphJournal(tmp_path / "default", toy_graph, config)
        for ops in MUTATIONS[:2]:
            store.apply(ops)
            assert store.maybe_compact() is False
        store.apply(MUTATIONS[2])
        assert store.maybe_compact() is True
        assert store.journal.records == 0
        store.close()

    def test_crash_between_snapshot_and_truncate_skips(
        self, toy_graph, tmp_path
    ):
        """The compaction crash window: snapshot written, journal not
        yet reset. Recovery must skip the already-folded records."""
        directory = tmp_path / "default"
        want = mutated(toy_graph, 3)
        store = GraphJournal(directory, toy_graph)
        for ops in MUTATIONS[:3]:
            store.apply(ops)
        # Crash mid-compaction: the snapshot now holds versions the
        # journal still carries.
        write_snapshot(directory / SNAPSHOT_NAME, store.graph)
        store.abort()
        recovered = GraphJournal(directory, KnowledgeGraph())
        assert recovered.replayed_records == 0  # all skipped, none reapplied
        assert_bit_identical(recovered.graph, want)
        recovered.close()

    def test_journal_gap_is_typed(self, toy_graph, tmp_path):
        directory = tmp_path / "default"
        store = GraphJournal(directory, toy_graph)
        store.close()
        # A record from "the future": its stored version is past what
        # snapshot + prior records replay to.
        (directory / JOURNAL_NAME).write_bytes(
            encode_record(toy_graph.version + 7, MUTATIONS[0])
        )
        with pytest.raises(JournalError) as excinfo:
            GraphJournal(directory, KnowledgeGraph())
        assert "does not continue" in str(excinfo.value)

    def test_versionless_record_is_corruption(self, toy_graph, tmp_path):
        directory = tmp_path / "default"
        store = GraphJournal(directory, toy_graph)
        store.close()
        payload = json.dumps({"ops": MUTATIONS[0]}).encode()
        (directory / JOURNAL_NAME).write_bytes(
            _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        )
        with pytest.raises(JournalCorruption):
            GraphJournal(directory, KnowledgeGraph())

    def test_failed_op_replays_to_same_prefix(self, toy_graph, tmp_path):
        """A record whose apply failed live fails identically on
        replay: same prefix applied, then the batch aborts."""
        directory = tmp_path / "default"
        store = GraphJournal(directory, toy_graph)
        bad = [
            {"op": "set_name", "args": ["i:0", "Renamed"]},
            {"op": "remove_edge", "args": ["u:0", "i:99"]},  # KeyError
        ]
        store.record(bad)
        with pytest.raises(KeyError):
            apply_mutations(store.graph, bad)
        live_version = store.graph.version
        assert store.graph.name("i:0") == "Renamed"  # prefix applied
        store.abort()
        recovered = GraphJournal(directory, KnowledgeGraph())
        assert recovered.graph.version == live_version
        assert recovered.graph.name("i:0") == "Renamed"
        assert_bit_identical(recovered.graph, store.graph)
        recovered.close()

    def test_torn_write_on_record_recovers_prior_state(
        self, toy_graph, tmp_path
    ):
        directory = tmp_path / "default"
        want = mutated(toy_graph, 2)
        plan = FaultPlan(faults=(Fault(kind="torn-write", at=2),))
        store = GraphJournal(directory, toy_graph, faults=plan)
        store.apply(MUTATIONS[0])
        store.apply(MUTATIONS[1])
        with pytest.raises(SimulatedCrash):
            store.apply(MUTATIONS[2])
        recovered = GraphJournal(directory, KnowledgeGraph())
        assert recovered.recovered_torn_bytes > 0
        assert recovered.replayed_records == 2
        assert_bit_identical(recovered.graph, want)
        recovered.close()


class TestJournalConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            JournalConfig(fsync="sometimes")
        with pytest.raises(ValueError):
            JournalConfig(fsync_interval_seconds=-1.0)
        with pytest.raises(ValueError):
            JournalConfig(compact_every_records=-1)
