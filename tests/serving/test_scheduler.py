"""Scheduler coverage: skewed mixes, parity, streaming, elasticity.

The acceptance contract for the serving scheduler:

- a skewed task mix (heavy group scenarios interleaved with
  singletons) produces bit-identical results on every backend x
  scheduler combination — serial / threads / processes crossed with
  work-stealing / chunked;
- ``stream()`` yields results in completion order (not submission
  order) and covers the whole batch, per task under work-stealing;
- the elastic pool's grow / shrink / steal activity is observable
  through ``SessionStats``;
- per-task latency surfaces as ``BatchResult.latency_ms`` with pinned
  p50/p95 aggregation on ``BatchReport``.
"""

import time

import pytest

from repro.api import (
    ExplanationSession,
    MethodSpec,
    ParallelConfig,
    SchedulerConfig,
    SummaryRequest,
    register_method,
    unregister_method,
)
from repro.core.batch import BatchReport, BatchResult
from repro.core.scenarios import Scenario, SummaryTask
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.paths import Path


def canonical(explanation):
    subgraph = explanation.subgraph
    return (
        sorted(subgraph.nodes()),
        sorted((e.source, e.target, e.weight) for e in subgraph.edges()),
    )


@pytest.fixture(scope="module")
def skewed_tasks(test_bench):
    """Group scenarios interleaved with singleton user-centric tasks."""
    singles = list(
        test_bench.tasks(Scenario.USER_CENTRIC, "PGPR", 2).values()
    )[:6]
    groups = list(
        test_bench.tasks(Scenario.USER_GROUP, "PGPR", 4).values()
    )[:2]
    assert len(singles) >= 3 and len(groups) >= 1
    s = [singles[i % len(singles)] for i in range(6)]
    g = [groups[i % len(groups)] for i in range(2)]
    return [s[0], s[1], g[0], s[2], s[3], g[1], s[4], s[5]]


@pytest.fixture(scope="module")
def serial_reference(test_bench, skewed_tasks):
    with ExplanationSession(test_bench.graph) as session:
        return session.run(skewed_tasks)


class TestSkewedMixParity:
    """serial/threads/processes x work-stealing/chunked, bit-identical."""

    @pytest.mark.parametrize(
        ("backend", "mode"),
        [
            ("serial", "work-stealing"),
            ("threads", "work-stealing"),
            ("threads", "chunked"),
            ("processes", "work-stealing"),
            ("processes", "chunked"),
        ],
    )
    def test_parity_with_serial(
        self, backend, mode, test_bench, skewed_tasks, serial_reference
    ):
        with ExplanationSession(
            test_bench.graph,
            parallel=ParallelConfig(backend=backend, workers=2),
            scheduler=SchedulerConfig(mode=mode),
        ) as session:
            report = session.run(skewed_tasks)
        assert report.parallel == backend
        if backend != "serial":
            assert report.scheduler == mode
        assert [r.index for r in report.results] == (
            list(range(len(skewed_tasks)))
        )
        for want, got in zip(serial_reference.results, report.results):
            assert canonical(got.explanation) == (
                canonical(want.explanation)
            ), got.index

    @pytest.mark.parametrize("mode", ["work-stealing", "chunked"])
    def test_stream_covers_skewed_mix(
        self, mode, test_bench, skewed_tasks, serial_reference
    ):
        with ExplanationSession(
            test_bench.graph,
            parallel=ParallelConfig(backend="processes", workers=2),
            scheduler=SchedulerConfig(mode=mode),
        ) as session:
            streamed = list(session.stream(skewed_tasks))
        assert sorted(r.index for r in streamed) == (
            list(range(len(skewed_tasks)))
        )
        by_index = {r.index: r for r in streamed}
        for want in serial_reference.results:
            assert canonical(by_index[want.index].explanation) == (
                canonical(want.explanation)
            )


class TestStreamOrdering:
    """Completion order, not submission order, drives the stream."""

    def test_out_of_order_completion_streams_out_of_order(self):
        """A slow first task must not block later results (threads)."""
        delays = {0: 0.4, 1: 0.01, 2: 0.01, 3: 0.01}

        class SleepySummarizer:
            def __init__(self, graph):
                self.graph = graph

            def summarize(self, task):
                from repro.core.explanation import SubgraphExplanation

                time.sleep(delays[task.k - 10])
                subgraph = KnowledgeGraph()
                subgraph.add_node(task.terminals[0])
                return SubgraphExplanation(
                    subgraph=subgraph, task=task, method="Sleepy"
                )

        register_method(
            MethodSpec(
                name="sleepy",
                legacy_name="Sleepy",
                builder=lambda graph, config, cache: SleepySummarizer(
                    graph
                ),
                uses_traversal=False,
            )
        )
        try:
            tasks = [
                SummaryTask(
                    scenario=Scenario.USER_CENTRIC,
                    terminals=("u:0",),
                    paths=(),
                    anchors=(),
                    focus=(),
                    k=10 + i,  # smuggles the delay key through the task
                )
                for i in range(4)
            ]
            requests = [
                SummaryRequest(task=task, method="sleepy")
                for task in tasks
            ]
            with ExplanationSession(
                KnowledgeGraph(),
                parallel=ParallelConfig(backend="threads", workers=2),
            ) as session:
                order = [r.index for r in session.stream(requests)]
            assert sorted(order) == [0, 1, 2, 3]
            # Task 0 sleeps 40x longer than the rest: with per-task
            # work-stealing dispatch it must not be the first result.
            assert order[0] != 0
            assert order[-1] == 0
        finally:
            unregister_method("sleepy")

    def test_work_stealing_streams_before_batch_completes(self, test_bench):
        tasks = list(
            test_bench.tasks(Scenario.USER_CENTRIC, "PGPR", 2).values()
        )[:5]
        with ExplanationSession(test_bench.graph) as session:
            iterator = session.stream(tasks)
            first = next(iterator)
            assert first.index == 0
            assert len(list(iterator)) == len(tasks) - 1


class TestElasticPool:
    """Grow under pressure, shrink on idle — observable via stats."""

    def test_grow_and_shrink_counters(self, test_bench, skewed_tasks):
        tasks = skewed_tasks * 2  # 16 tasks against a 1-worker floor
        with ExplanationSession(
            test_bench.graph,
            parallel=ParallelConfig(backend="processes", workers=1),
            scheduler=SchedulerConfig(
                min_workers=1, max_workers=3, shrink_idle_seconds=0.0
            ),
        ) as session:
            first = session.run(tasks)
            assert session.stats.grows >= 1
            assert session.stats.peak_queue_depth > 0
            # shrink_idle_seconds=0: the pool is "idle" the moment the
            # first run drains. Shrinking is load-aware — a big second
            # batch keeps every warm worker — so a *small* follow-up
            # batch is what lets the pool retire down to its needs.
            session.run(tasks)
            assert session.stats.shrinks == 0  # 16 tasks keep all 3
            second = session.run(tasks[:1])
            assert session.stats.shrinks >= 1
            assert session.stats.pool_starts == 1  # same pool throughout
            assert canonical(second.results[0].explanation) == (
                canonical(first.results[0].explanation)
            )

    def test_abandoned_streams_do_not_poison_next_run(
        self, test_bench, skewed_tasks, serial_reference
    ):
        """Abandoned stream iterators must not leak into later batches.

        Their jobs were already submitted eagerly; dispatch
        multiplexing routes (and ultimately drops) those results per
        dispatch id, so a later run() on the same warm pool must pair
        every new task with its own explanation — whether the iterator
        was dropped before its first next() or mid-consumption.
        """
        with ExplanationSession(
            test_bench.graph,
            parallel=ParallelConfig(backend="processes", workers=2),
        ) as session:
            unstarted = session.stream(skewed_tasks)
            del unstarted  # never iterated: generator body never ran
            halfway = session.stream(skewed_tasks)
            next(halfway)
            halfway.close()  # abandoned mid-consumption
            report = session.run(skewed_tasks)
            assert [r.index for r in report.results] == (
                list(range(len(skewed_tasks)))
            )
            for want, got in zip(serial_reference.results, report.results):
                assert canonical(got.explanation) == (
                    canonical(want.explanation)
                )
            assert session.stats.pool_starts == 1  # pool stayed warm

    def test_interleaved_stream_and_run_both_complete(
        self, test_bench, skewed_tasks, serial_reference
    ):
        """A run() in the middle of a stream() must not kill either.

        The executor path always supported overlapping calls on one
        session; the work-stealing pool multiplexes dispatches, so the
        paused stream resumes cleanly after the interleaved batch.
        """
        with ExplanationSession(
            test_bench.graph,
            parallel=ParallelConfig(backend="processes", workers=2),
        ) as session:
            iterator = session.stream(skewed_tasks)
            first = next(iterator)
            interleaved = session.run(skewed_tasks)
            rest = list(iterator)
        streamed = {r.index: r for r in [first, *rest]}
        assert sorted(streamed) == list(range(len(skewed_tasks)))
        assert session.stats.pool_starts == 1
        for want in serial_reference.results:
            assert canonical(streamed[want.index].explanation) == (
                canonical(want.explanation)
            )
            assert canonical(
                interleaved.results[want.index].explanation
            ) == canonical(want.explanation)

    def test_steals_observed_under_skew(self, test_bench, skewed_tasks):
        # One heavy group task in front of a run of singletons: whoever
        # picks the heavy task holds exactly one worker, so the other
        # worker must finish tasks nominally assigned to its peer.
        singles = [t for t in skewed_tasks if not t.scenario.is_group]
        heavy = next(t for t in skewed_tasks if t.scenario.is_group)
        tasks = [heavy, *singles, *singles]
        with ExplanationSession(
            test_bench.graph,
            parallel=ParallelConfig(backend="processes", workers=2),
            scheduler=SchedulerConfig(max_workers=2),
        ) as session:
            report = session.run(tasks)
        assert report.scheduler == "work-stealing"
        assert session.stats.steals >= 1


class TestLatencySurfacing:
    """Satellite: worker-measured latency_ms + pinned p50/p95."""

    def test_latency_ms_is_seconds_in_milliseconds(self):
        result = _result(index=0, seconds=0.25)
        assert result.latency_ms == 250.0

    def test_report_percentiles_pinned(self):
        report = _report(seconds=[0.010, 0.040, 0.020, 0.030])
        # sorted latencies: [10, 20, 30, 40] ms
        assert report.latency_p50_ms == 30.0
        assert report.latency_p95_ms == 40.0

    def test_single_result_percentiles(self):
        report = _report(seconds=[0.005])
        assert report.latency_p50_ms == 5.0
        assert report.latency_p95_ms == 5.0

    def test_empty_report_percentiles_are_zero(self):
        report = _report(seconds=[])
        assert report.latency_p50_ms == 0.0
        assert report.latency_p95_ms == 0.0

    def test_summary_uses_the_pinned_percentiles(self):
        report = _report(seconds=[0.010, 0.040, 0.020, 0.030])
        assert "p50 30.00 ms" in report.summary()
        assert "p95 40.00 ms" in report.summary()

    def test_process_results_carry_worker_measured_latency(
        self, test_bench, skewed_tasks
    ):
        with ExplanationSession(
            test_bench.graph,
            parallel=ParallelConfig(backend="processes", workers=2),
        ) as session:
            report = session.run(skewed_tasks)
        for result in report.results:
            assert result.latency_ms == result.seconds * 1000.0
            assert result.seconds > 0.0


def _task():
    return SummaryTask(
        scenario=Scenario.USER_CENTRIC,
        terminals=("u:0", "i:0"),
        paths=(Path(nodes=("u:0", "i:0")),),
        anchors=("i:0",),
        focus=("u:0",),
        k=1,
    )


def _result(index: int, seconds: float) -> BatchResult:
    from repro.core.explanation import SubgraphExplanation

    subgraph = KnowledgeGraph()
    subgraph.add_edge("u:0", "i:0", 1.0)
    return BatchResult(
        index=index,
        task=_task(),
        explanation=SubgraphExplanation(
            subgraph=subgraph, task=_task(), method="ST"
        ),
        seconds=seconds,
    )


def _report(seconds: list[float]) -> BatchReport:
    return BatchReport(
        method="ST",
        results=tuple(
            _result(index, value) for index, value in enumerate(seconds)
        ),
        freeze_seconds=0.0,
        total_seconds=sum(seconds) or 0.001,
    )
