"""The versioned wire schema: lossless codecs + strict validation.

``repro.api.protocol`` is the single serialization authority for the
network tier, the CLI's JSONL task files, and ``BatchReport.to_dict``.
These tests pin the three contracts that make it trustworthy:

- every codec round-trips losslessly *through real JSON text* (float
  repr round-trips exactly; iteration orders survive — the
  bit-identity the server's parity guarantee is built on);
- decoding is strict: junk raises :class:`ProtocolError` with a stable
  machine-readable ``code``, never a KeyError three layers deep;
- the legacy ``repro.core.batch`` serialization names still work but
  emit a ``DeprecationWarning`` pointing here.
"""

import json

import pytest

from repro.api import protocol
from repro.api.requests import SummaryRequest
from repro.core.batch import BatchReport, BatchResult
from repro.core.explanation import SubgraphExplanation
from repro.core.pcst_summary import PrizePolicy
from repro.core.scenarios import Scenario, SummaryTask
from repro.core.summarizer import Summarizer
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.paths import Path

from tests.serving.test_wire import assert_bit_identical


def through_json(data: dict) -> dict:
    """Force a real text round trip (what the socket actually does)."""
    return json.loads(json.dumps(data))


def make_task(**overrides) -> SummaryTask:
    fields = dict(
        scenario=Scenario.USER_CENTRIC,
        terminals=("u:0", "i:1", "i:2"),
        paths=(Path(nodes=("u:0", "i:1")), Path(nodes=("u:0", "e:0", "i:2"))),
        anchors=("i:1", "i:2"),
        focus=("u:0",),
        k=2,
    )
    fields.update(overrides)
    return SummaryTask(**fields)


class TestTaskCodec:
    @pytest.mark.parametrize("scenario", list(Scenario))
    def test_round_trip_every_scenario(self, scenario, test_bench):
        task = next(iter(test_bench.tasks(scenario, "PGPR", 4).values()))
        assert protocol.task_from_json(
            through_json(protocol.task_to_json(task))
        ) == task

    def test_schema_is_pinned(self):
        data = protocol.task_to_json(make_task())
        assert data == {
            "scenario": "user-centric",
            "terminals": ["u:0", "i:1", "i:2"],
            "paths": [["u:0", "i:1"], ["u:0", "e:0", "i:2"]],
            "anchors": ["i:1", "i:2"],
            "focus": ["u:0"],
            "k": 2,
        }

    @pytest.mark.parametrize(
        "mangle",
        [
            lambda d: d.pop("scenario"),
            lambda d: d.update(scenario="no-such-scenario"),
            lambda d: d.update(terminals="not-a-list"),
            lambda d: d.update(terminals=[1, 2]),
            lambda d: d.update(paths=[["u:0"], "oops"]),
            lambda d: d.update(k="many"),
            lambda d: d.update(k=True),
            lambda d: d.update(anchors=["never-a-terminal"]),
        ],
    )
    def test_malformed_task_raises_typed_error(self, mangle):
        data = protocol.task_to_json(make_task())
        mangle(data)
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.task_from_json(data)
        assert excinfo.value.code == "bad-request"


class TestRequestCodec:
    def test_round_trip_with_enum_override(self):
        request = SummaryRequest(
            task=make_task(),
            method="pcst",
            overrides={
                "lam": 2.5,
                "prize_policy": PrizePolicy.PAGERANK,
                "use_edge_weights": True,
            },
        )
        decoded = protocol.request_from_json(
            through_json(protocol.request_to_json(request))
        )
        assert decoded.task == request.task
        assert decoded.method == "pcst"
        assert dict(decoded.overrides) == dict(request.overrides)
        assert decoded.overrides["prize_policy"] is PrizePolicy.PAGERANK

    def test_bare_request_omits_optional_fields(self):
        data = protocol.request_to_json(SummaryRequest(task=make_task()))
        assert set(data) == {"task"}
        decoded = protocol.request_from_json(through_json(data))
        assert decoded.method is None and not decoded.overrides

    @pytest.mark.parametrize(
        ("mangle", "code"),
        [
            (lambda d: d.pop("task"), "bad-request"),
            (lambda d: d.update(method=7), "bad-request"),
            (lambda d: d.update(overrides=[1]), "bad-request"),
            (
                lambda d: d.update(overrides={"no_such_knob": 1}),
                "bad-request",
            ),
            (
                lambda d: d.update(overrides={"prize_policy": "bogus"}),
                "bad-request",
            ),
        ],
    )
    def test_malformed_request_raises_typed_error(self, mangle, code):
        data = protocol.request_to_json(SummaryRequest(task=make_task()))
        mangle(data)
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.request_from_json(data)
        assert excinfo.value.code == code


class TestExplanationCodec:
    @pytest.mark.parametrize("method", ["ST", "ST-fast", "PCST", "Union"])
    def test_real_summaries_round_trip_bit_identical(
        self, method, test_bench
    ):
        task = next(
            iter(test_bench.tasks(Scenario.USER_CENTRIC, "PGPR", 4).values())
        )
        explanation = Summarizer(
            test_bench.graph, method=method
        ).summarize(task)
        decoded = protocol.explanation_from_json(
            through_json(protocol.explanation_to_json(explanation)), task
        )
        assert_bit_identical(decoded, explanation)

    def test_names_relations_and_isolated_nodes_survive(self, toy_graph):
        toy_graph.set_name("i:0", "The Matrix")
        from repro.graph.subgraph import edge_subgraph

        sub = edge_subgraph(toy_graph, [("i:0", "u:0"), ("i:0", "e:genre:0")])
        sub.add_node("u:99")  # isolated — no adjacency row entries
        task = make_task()
        explanation = SubgraphExplanation(
            subgraph=sub, task=task, method="X", params={"lam": 2.0}
        )
        decoded = protocol.explanation_from_json(
            through_json(protocol.explanation_to_json(explanation)), task
        )
        assert_bit_identical(decoded, explanation)
        assert decoded.subgraph.name("i:0") == "The Matrix"
        assert decoded.subgraph.relation("i:0", "e:genre:0") == "genre"
        assert "u:99" in list(decoded.subgraph.nodes())

    def test_rows_must_match_nodes(self):
        task = make_task()
        sub = KnowledgeGraph()
        sub.add_node("u:0")
        data = protocol.explanation_to_json(
            SubgraphExplanation(subgraph=sub, task=task, method="X")
        )
        data["rows"] = []
        with pytest.raises(protocol.ProtocolError):
            protocol.explanation_from_json(data, task)


@pytest.fixture()
def sample_report(test_bench):
    tasks = list(
        test_bench.tasks(Scenario.USER_CENTRIC, "PGPR", 3).values()
    )[:4]
    from repro.api import ExplanationSession

    with ExplanationSession(test_bench.graph) as session:
        return session.run(tasks)


class TestReportCodec:
    def test_to_dict_from_dict_is_lossless(self, sample_report):
        report = sample_report
        decoded = BatchReport.from_dict(through_json(report.to_dict()))
        for name in (
            "method",
            "freeze_seconds",
            "total_seconds",
            "cache_hits",
            "cache_misses",
            "cache_patched",
            "cache_base_hits",
            "cache_base_misses",
            "workers",
            "parallel",
            "scheduler",
        ):
            assert getattr(decoded, name) == getattr(report, name), name
        # Derived metrics re-derive identically because per-result
        # seconds survive the JSON text round trip bit-exactly.
        assert decoded.latency_p50_ms == report.latency_p50_ms
        assert decoded.latency_p95_ms == report.latency_p95_ms
        assert decoded.throughput == report.throughput
        assert len(decoded.results) == len(report.results)
        for got, want in zip(decoded.results, report.results):
            assert got.index == want.index
            assert got.seconds == want.seconds
            assert got.task == want.task
            assert list(got.explanation.subgraph.nodes()) == (
                list(want.explanation.subgraph.nodes())
            )

    def test_scheduler_and_counters_survive(self, test_bench):
        tasks = list(
            test_bench.tasks(Scenario.USER_CENTRIC, "PGPR", 3).values()
        )[:4]
        from repro.api import ExplanationSession, ParallelConfig

        with ExplanationSession(
            test_bench.graph,
            parallel=ParallelConfig(backend="threads", workers=2),
        ) as session:
            report = session.run(tasks)
        assert report.scheduler == "work-stealing"
        decoded = BatchReport.from_dict(through_json(report.to_dict()))
        assert decoded.scheduler == "work-stealing"
        assert decoded.parallel == "threads"
        assert decoded.workers == report.workers

    def test_result_codec_is_self_contained(self, sample_report):
        result = sample_report.results[0]
        decoded = protocol.result_from_json(
            through_json(protocol.result_to_json(result))
        )
        assert isinstance(decoded, BatchResult)
        assert decoded.task == result.task
        assert decoded.explanation.task == result.task
        assert decoded.seconds == result.seconds

    def test_missing_counter_is_rejected(self, sample_report):
        data = sample_report.to_dict()
        del data["cache_base_hits"]
        with pytest.raises(protocol.ProtocolError):
            BatchReport.from_dict(data)


class TestEnvelopes:
    def test_envelope_round_trip(self):
        kind, frame = protocol.open_envelope(
            through_json(protocol.envelope("ping", {"x": 1}))
        )
        assert kind == "ping" and frame["x"] == 1

    @pytest.mark.parametrize(
        ("data", "code"),
        [
            ("not-a-dict", "bad-frame"),
            ({}, "unknown-version"),
            ({"protocol_version": 999, "kind": "ping"}, "unknown-version"),
            ({"protocol_version": protocol.PROTOCOL_VERSION}, "bad-request"),
        ],
    )
    def test_bad_envelopes_are_typed(self, data, code):
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.open_envelope(data)
        assert excinfo.value.code == code

    def test_error_frame_codes_are_closed_set(self):
        frame = protocol.error_frame("overloaded", "busy")
        assert frame["kind"] == "error" and frame["code"] == "overloaded"
        with pytest.raises(ValueError):
            protocol.error_frame("made-up-code", "nope")


class TestLegacyAliases:
    def test_batch_names_warn_and_delegate(self):
        from repro.core import batch

        task = make_task()
        with pytest.warns(DeprecationWarning, match="repro.api.protocol"):
            data = batch.task_to_json(task)
        assert data == protocol.task_to_json(task)
        with pytest.warns(DeprecationWarning, match="repro.api.protocol"):
            assert batch.task_from_json(data) == task

    def test_jsonl_helpers_do_not_warn(self, tmp_path):
        import warnings

        from repro.core.batch import dump_tasks_jsonl, load_tasks_jsonl

        tasks = [make_task(), make_task(k=3)]
        path = tmp_path / "tasks.jsonl"
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            dump_tasks_jsonl(tasks, path)
            assert load_tasks_jsonl(path) == tasks
