"""SchedulerConfig validation and the shared static-chunk formula."""

import pytest

from repro.serving import SchedulerConfig, static_chunks


class TestSchedulerConfig:
    def test_defaults_are_work_stealing(self):
        config = SchedulerConfig()
        assert config.mode == "work-stealing"
        assert config.min_workers == 1
        assert config.max_workers == 0  # auto: max(initial, cpu count)

    def test_chunked_mode_accepted(self):
        assert SchedulerConfig(mode="chunked").mode == "chunked"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="scheduler mode"):
            SchedulerConfig(mode="round-robin")

    def test_min_workers_validated(self):
        with pytest.raises(ValueError, match="min_workers"):
            SchedulerConfig(min_workers=0)

    def test_max_workers_validated(self):
        with pytest.raises(ValueError, match="max_workers"):
            SchedulerConfig(max_workers=-1)
        with pytest.raises(ValueError, match="max_workers"):
            SchedulerConfig(min_workers=4, max_workers=2)

    def test_grow_pressure_validated(self):
        with pytest.raises(ValueError, match="grow_pressure"):
            SchedulerConfig(grow_pressure=0.0)

    def test_shrink_idle_validated(self):
        with pytest.raises(ValueError, match="shrink_idle_seconds"):
            SchedulerConfig(shrink_idle_seconds=-1.0)


class TestStaticChunks:
    def test_legacy_formula_pinned(self):
        # ceil(64 / (4 * 4)) = 4 -> 16 chunks of 4: the exact split the
        # chunked scheduler has always produced.
        chunks = static_chunks(list(range(64)), 4, None)
        assert [len(c) for c in chunks] == [4] * 16
        assert [x for c in chunks for x in c] == list(range(64))

    def test_explicit_chunk_size_wins(self):
        chunks = static_chunks(list(range(10)), 4, 3)
        assert [len(c) for c in chunks] == [3, 3, 3, 1]

    def test_empty_input(self):
        assert static_chunks([], 4, None) == []

    def test_single_worker(self):
        chunks = static_chunks(list(range(8)), 1, None)
        assert [len(c) for c in chunks] == [2, 2, 2, 2]
