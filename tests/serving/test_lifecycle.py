"""Lifecycle, durability wiring, hygiene, and supervised chunking.

The acceptance contract for this layer (ISSUE 8):

- ``health`` answers liveness/readiness/draining with per-graph depth
  and counters — even while the server drains;
- a server hosted with ``state_dir=`` journals every acked mutation
  and recovers it bit-identically after a restart (including the
  in-process ``kill-server`` fault, which aborts without flushing);
- ``request_stop`` + ``stop(drain=True)`` finish in-flight streams
  with zero dropped results while new requests get typed
  ``shutting-down`` frames within 0.5s;
- connection hygiene: idle-read timeout hangs up on mute peers, the
  max-connections bound rejects the excess connection with a typed
  frame;
- the client treats ``shutting-down`` exactly like ``overloaded``:
  seeded backoff, ``retry_after_ms`` floor, deadline ceiling;
- chunked dispatch survives worker death: the affected chunk is
  retried within the budget (bit-identical batch, no RuntimeWarning)
  or concluded as typed ``TaskFailure(cause="crash")`` results;
- a bare in-process session shrinks its idle work-stealing pool in
  the background, between dispatches, per ``shrink_idle_seconds``.
"""

import socket
import threading
import time
import warnings

import pytest

from repro.api import (
    ExplanationSession,
    MethodSpec,
    ParallelConfig,
    ResilienceConfig,
    SchedulerConfig,
    SummaryRequest,
    register_method,
    unregister_method,
)
from repro.api import protocol
from repro.core.scenarios import Scenario, SummaryTask
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.serving.client import (
    ExplanationClient,
    ServerError,
    ShuttingDownError,
)
from repro.serving.config import JournalConfig
from repro.serving.faults import Fault, FaultPlan
from repro.serving.frames import (
    MAX_FRAME_BYTES,
    get_codec,
    read_frame,
    write_frame,
)
from repro.serving.server import (
    ExplanationServer,
    ServerConfig,
    ServerThread,
)

#: Keeps a fault firing through any retry budget a test configures.
ALWAYS = 99


def canonical(explanation):
    subgraph = explanation.subgraph
    return (
        sorted(subgraph.nodes()),
        sorted((e.source, e.target, e.weight) for e in subgraph.edges()),
    )


class _Sleepy:
    def __init__(self, graph):
        self.graph = graph

    def summarize(self, task):
        from repro.core.explanation import SubgraphExplanation

        time.sleep((task.k - 10) / 10.0)
        subgraph = KnowledgeGraph()
        subgraph.add_node(task.terminals[0])
        return SubgraphExplanation(
            subgraph=subgraph, task=task, method="Sleepy"
        )


@pytest.fixture()
def sleepy_method():
    register_method(
        MethodSpec(
            name="sleepy",
            legacy_name="Sleepy",
            builder=lambda graph, config, cache: _Sleepy(graph),
            uses_traversal=False,
        )
    )
    try:
        yield
    finally:
        unregister_method("sleepy")


def _sleepy_request(tenths: int) -> SummaryRequest:
    return SummaryRequest(
        task=SummaryTask(
            scenario=Scenario.USER_CENTRIC,
            terminals=("u:0",),
            paths=(),
            anchors=(),
            focus=(),
            k=10 + tenths,
        ),
        method="sleepy",
    )


# ----------------------------------------------------------------------
# Health
# ----------------------------------------------------------------------
class TestHealth:
    def test_schema_on_fresh_server(self, toy_graph):
        with ServerThread(ExplanationServer(toy_graph)) as thread:
            with ExplanationClient("127.0.0.1", thread.port) as client:
                health = client.health()
        assert health["status"] == "ok"
        assert health["live"] is True
        assert health["ready"] is True
        assert health["draining"] is False
        assert health["durable"] is False
        assert health["connections"] >= 1
        default = health["graphs"]["default"]
        assert default["pending"] == 0
        assert default["version"] == toy_graph.version
        # No session was ever created, so no resilience counters yet.
        assert "resilience" not in default
        assert "journal" not in default

    def test_resilience_counters_appear_after_work(self, test_bench):
        task = next(
            iter(test_bench.tasks(Scenario.USER_CENTRIC, "PGPR", 3).values())
        )
        with ServerThread(ExplanationServer(test_bench.graph)) as thread:
            with ExplanationClient("127.0.0.1", thread.port) as client:
                client.explain(task)
                health = client.health()
        resilience = health["graphs"]["default"]["resilience"]
        assert resilience == {
            "worker_deaths": 0,
            "task_retries": 0,
            "task_timeouts": 0,
            "local_fallbacks": 0,
        }

    def test_durable_server_reports_journal(self, toy_graph, tmp_path):
        server = ExplanationServer(toy_graph, state_dir=tmp_path)
        with ServerThread(server) as thread:
            with ExplanationClient("127.0.0.1", thread.port) as client:
                client.add_edge("u:0", "i:9", 2.0)
                health = client.health()
        assert health["durable"] is True
        journal = health["graphs"]["default"]["journal"]
        assert journal["journal_records"] == 1
        assert journal["replayed_records"] == 0
        assert journal["version"] == toy_graph.version


# ----------------------------------------------------------------------
# Durability wiring (journal <-> server <-> restart)
# ----------------------------------------------------------------------
class TestDurableServer:
    def test_mutations_survive_restart(self, toy_graph, tmp_path):
        server = ExplanationServer(toy_graph, state_dir=tmp_path)
        with ServerThread(server) as thread:
            with ExplanationClient("127.0.0.1", thread.port) as client:
                client.add_edge("u:0", "i:9", 2.0)
                version = client.set_weight("u:0", "i:0", 8.0)
        # Restart against the same state_dir with a decoy seed: the
        # durable state is authoritative, the seed is ignored.
        decoy = KnowledgeGraph()
        decoy.add_edge("u:7", "i:7", 1.0)
        reborn = ExplanationServer(decoy, state_dir=tmp_path)
        with ServerThread(reborn) as thread:
            with ExplanationClient("127.0.0.1", thread.port) as client:
                health = client.health()
        default = health["graphs"]["default"]
        assert default["version"] == version
        assert default["journal"]["replayed_records"] == 2

    def test_compact_rpc_folds_journal(self, toy_graph, tmp_path):
        server = ExplanationServer(
            toy_graph, state_dir=tmp_path, journal=JournalConfig()
        )
        with ServerThread(server) as thread:
            with ExplanationClient("127.0.0.1", thread.port) as client:
                client.add_edge("u:0", "i:9", 2.0)
                client.add_edge("u:1", "i:9", 1.0)
                stats = client.compact()
        assert stats["journal_records"] == 0
        assert stats["compactions"] == 1
        # The snapshot now owns everything: restart replays nothing.
        reborn = ExplanationServer(KnowledgeGraph(), state_dir=tmp_path)
        with ServerThread(reborn) as thread:
            with ExplanationClient("127.0.0.1", thread.port) as client:
                journal = client.health()["graphs"]["default"]["journal"]
        assert journal["replayed_records"] == 0
        assert journal["version"] == stats["version"]

    def test_compact_without_state_dir_is_typed(self, toy_graph):
        with ServerThread(ExplanationServer(toy_graph)) as thread:
            with ExplanationClient("127.0.0.1", thread.port) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.compact()
        assert excinfo.value.code == "bad-request"

    def test_kill_server_fault_loses_nothing_acked(
        self, toy_graph, tmp_path
    ):
        """The in-process kill -9: acked mutations survive the abort."""
        plan = FaultPlan(faults=(Fault(kind="kill-server", at=0),))
        server = ExplanationServer(
            toy_graph, state_dir=tmp_path, loop_faults=plan
        )
        with ServerThread(server) as thread:
            with ExplanationClient("127.0.0.1", thread.port) as client:
                version = client.add_edge("u:0", "i:9", 2.0)
                # The first workload request hard-aborts the server:
                # socket and journal handles dropped, no flush, no
                # farewell frame — the client sees a dead connection.
                with pytest.raises((ServerError, OSError)):
                    client.run([_task_over_toy()])
            assert server.draining  # aborted servers admit nothing
        reborn = ExplanationServer(KnowledgeGraph(), state_dir=tmp_path)
        with ServerThread(reborn) as thread:
            with ExplanationClient("127.0.0.1", thread.port) as client:
                default = client.health()["graphs"]["default"]
        assert default["version"] == version
        assert default["journal"]["replayed_records"] == 1


def _task_over_toy() -> SummaryTask:
    return SummaryTask(
        scenario=Scenario.USER_CENTRIC,
        terminals=("u:0", "i:0"),
        paths=(),
        anchors=("i:0",),
        focus=("u:0",),
    )


# ----------------------------------------------------------------------
# Drain
# ----------------------------------------------------------------------
class TestDrain:
    def test_drain_finishes_streams_and_refuses_new_work(
        self, sleepy_method
    ):
        """Zero dropped results: a stream caught mid-flight by a drain
        still delivers every frame, while new requests are refused with
        a typed ``shutting-down`` answer within 0.5s."""
        requests = [_sleepy_request(5)] + [_sleepy_request(0)] * 2
        server = ExplanationServer(
            KnowledgeGraph(),
            parallel=ParallelConfig(backend="threads", workers=2),
        )
        with ServerThread(server) as thread:
            results: list = []
            errors: list = []
            first_frame = threading.Event()

            def consume() -> None:
                try:
                    with ExplanationClient("127.0.0.1", thread.port) as c:
                        for result in c.stream(requests):
                            results.append(result)
                            first_frame.set()
                except BaseException as error:
                    errors.append(error)
                    first_frame.set()

            consumer = threading.Thread(target=consume)
            consumer.start()
            assert first_frame.wait(timeout=30)
            thread.request_stop()  # the stream is now mid-flight
            # New work: typed refusal, fast.
            with ExplanationClient("127.0.0.1", thread.port) as c:
                start = time.monotonic()
                with pytest.raises(ShuttingDownError) as excinfo:
                    c.explain(_sleepy_request(0))
                assert time.monotonic() - start < 0.5
                assert excinfo.value.retry_after_ms == 100.0
                # Health still answers while draining.
                health = c.health()
            assert health["status"] == "draining"
            assert health["ready"] is False
            assert health["live"] is True
            consumer.join(timeout=30)
            assert not errors, errors
            assert sorted(r.index for r in results) == [0, 1, 2]
            thread.stop(drain=True)
        with pytest.raises(OSError):
            with ExplanationClient(
                "127.0.0.1", thread.port, reconnect=False
            ) as c:
                c.ping()

    def test_drain_flushes_journal(self, toy_graph, tmp_path):
        server = ExplanationServer(
            toy_graph,
            state_dir=tmp_path,
            journal=JournalConfig(fsync="never"),
        )
        with ServerThread(server) as thread:
            with ExplanationClient("127.0.0.1", thread.port) as client:
                version = client.add_edge("u:0", "i:9", 2.0)
            thread.stop(drain=True)
        reborn = ExplanationServer(KnowledgeGraph(), state_dir=tmp_path)
        with ServerThread(reborn) as thread:
            with ExplanationClient("127.0.0.1", thread.port) as client:
                default = client.health()["graphs"]["default"]
        assert default["version"] == version


# ----------------------------------------------------------------------
# Connection hygiene
# ----------------------------------------------------------------------
class TestConnectionHygiene:
    def test_idle_timeout_hangs_up_on_mute_peer(self, toy_graph):
        server = ExplanationServer(
            toy_graph, ServerConfig(idle_timeout_seconds=0.2)
        )
        with ServerThread(server) as thread:
            with socket.create_connection(
                ("127.0.0.1", thread.port), timeout=5.0
            ) as mute:
                mute.settimeout(5.0)
                # Send nothing: the server must hang up, not wait.
                assert mute.recv(1) == b""

    def test_active_connection_survives_idle_timeout(self, toy_graph):
        server = ExplanationServer(
            toy_graph, ServerConfig(idle_timeout_seconds=0.3)
        )
        with ServerThread(server) as thread:
            with ExplanationClient(
                "127.0.0.1", thread.port, reconnect=False
            ) as client:
                for _ in range(3):
                    assert client.ping() == ["default"]
                    time.sleep(0.1)  # always under the idle bound

    def test_max_connections_rejects_typed(self, toy_graph):
        server = ExplanationServer(
            toy_graph, ServerConfig(max_connections=1)
        )
        with ServerThread(server) as thread:
            with ExplanationClient(
                "127.0.0.1", thread.port, reconnect=False
            ) as holder:
                holder.ping()  # dials: occupies the single slot
                with ExplanationClient(
                    "127.0.0.1", thread.port, reconnect=False
                ) as excess:
                    with pytest.raises(ServerError) as excinfo:
                        excess.ping()
                assert excinfo.value.code == "too-many-connections"
            assert server.connections_rejected == 1


# ----------------------------------------------------------------------
# Client retry semantics for shutting-down
# ----------------------------------------------------------------------
class _ScriptedServer(threading.Thread):
    """One-connection fake server: a scripted reply per request.

    Replies are frame dicts; the literal string ``"pong"`` answers
    with a pong envelope. The last reply repeats forever.
    """

    def __init__(self, replies: list) -> None:
        super().__init__(daemon=True)
        self._replies = replies
        self._codec = get_codec("json")
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.port = self._listener.getsockname()[1]
        self.requests = 0
        self.start()

    def run(self) -> None:
        conn, _ = self._listener.accept()
        with conn:
            while True:
                try:
                    read_frame(conn, MAX_FRAME_BYTES)
                except Exception:
                    return
                index = min(self.requests, len(self._replies) - 1)
                self.requests += 1
                reply = self._replies[index]
                if reply == "pong":
                    reply = protocol.envelope(
                        "pong", {"graphs": ["default"]}
                    )
                write_frame(
                    conn, self._codec.encode(reply), MAX_FRAME_BYTES
                )

    def close(self) -> None:
        self._listener.close()


def _shutting_down_frame(retry_after_ms: float) -> dict:
    return protocol.error_frame(
        "shutting-down",
        "server is draining",
        retry_after_ms=retry_after_ms,
    )


class TestClientShuttingDownRetry:
    def test_fail_fast_raises_typed_with_hint(self):
        fake = _ScriptedServer([_shutting_down_frame(25)])
        try:
            with ExplanationClient("127.0.0.1", fake.port) as client:
                with pytest.raises(ShuttingDownError) as excinfo:
                    client.ping()
            assert excinfo.value.retry_after_ms == 25.0
        finally:
            fake.close()

    def test_backoff_absorbs_drain_window(self):
        """Same seeded backoff as overload: one refusal, then success."""
        fake = _ScriptedServer([_shutting_down_frame(80), "pong"])
        try:
            with ExplanationClient(
                "127.0.0.1",
                fake.port,
                retries=3,
                backoff_base_seconds=0.001,
                backoff_seed=7,
            ) as client:
                start = time.monotonic()
                assert client.ping() == ["default"]
                elapsed = time.monotonic() - start
            # The sleep is floored at the server's retry_after_ms hint.
            assert elapsed >= 0.08
            assert fake.requests == 2
        finally:
            fake.close()

    def test_deadline_caps_the_retry_loop(self):
        """A retry whose floored sleep would cross the deadline is
        refused: the typed error propagates instead of a late retry."""
        fake = _ScriptedServer([_shutting_down_frame(500)])
        try:
            with ExplanationClient(
                "127.0.0.1",
                fake.port,
                retries=5,
                backoff_base_seconds=0.001,
                backoff_seed=7,
            ) as client:
                start = time.monotonic()
                with pytest.raises(ShuttingDownError):
                    client.run([_task_over_toy()], deadline=0.2)
                assert time.monotonic() - start < 0.5
            assert fake.requests == 1
        finally:
            fake.close()


# ----------------------------------------------------------------------
# Satellite 1: chunked dispatch survives worker death
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def chunk_tasks(test_bench):
    singles = list(
        test_bench.tasks(Scenario.USER_CENTRIC, "PGPR", 2).values()
    )
    assert len(singles) >= 3
    return [singles[i % len(singles)] for i in range(8)]


@pytest.fixture(scope="module")
def chunk_reference(test_bench, chunk_tasks):
    with ExplanationSession(test_bench.graph) as session:
        return session.run(chunk_tasks)


def chunked_session(graph, *, resilience, faults):
    return ExplanationSession(
        graph,
        parallel=ParallelConfig(
            backend="processes", workers=2, chunk_size=2
        ),
        scheduler=SchedulerConfig(mode="chunked"),
        resilience=resilience,
        faults=faults,
    )


class TestChunkedSupervision:
    def test_crashed_chunk_is_retried_bit_identical(
        self, test_bench, chunk_tasks, chunk_reference
    ):
        """One worker crash no longer breaks the batch: the chunk is
        re-run on a respawned executor and the report matches the
        serial reference, with no RuntimeWarning fallback."""
        plan = FaultPlan(faults=(Fault(kind="crash", at=5),))
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            with chunked_session(
                test_bench.graph,
                resilience=ResilienceConfig(max_task_retries=2),
                faults=plan,
            ) as session:
                report = session.run(chunk_tasks)
                assert session.stats.worker_deaths == 1
                assert session.stats.task_retries >= 2  # whole chunk
                assert session.stats.local_fallbacks == 0
        assert report.scheduler == "chunked"
        assert report.retried >= 2
        assert [r.index for r in report.results] == list(range(8))
        for want, got in zip(chunk_reference.results, report.results):
            assert got.failure is None, got.failure
            assert canonical(got.explanation) == (
                canonical(want.explanation)
            ), got.index

    def test_exhausted_budget_concludes_typed_crash(
        self, test_bench, chunk_tasks
    ):
        """A chunk that keeps killing its worker concludes as typed
        ``TaskFailure(cause="crash")`` results, not an exception."""
        plan = FaultPlan(
            faults=(Fault(kind="crash", at=0, attempts=ALWAYS),)
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            with ExplanationSession(
                test_bench.graph,
                parallel=ParallelConfig(
                    backend="processes", workers=2, chunk_size=len(chunk_tasks)
                ),
                scheduler=SchedulerConfig(mode="chunked"),
                resilience=ResilienceConfig(max_task_retries=1),
                faults=plan,
            ) as session:
                report = session.run(chunk_tasks)
                assert session.stats.worker_deaths == 2  # attempts 0 and 1
        assert [r.index for r in report.results] == list(range(8))
        for result in report.results:
            assert result.explanation is None
            assert result.failure.cause == "crash"
            assert result.failure.retries == 1

    def test_stream_yields_crash_failures_in_place(
        self, test_bench, chunk_tasks
    ):
        plan = FaultPlan(
            faults=(Fault(kind="crash", at=0, attempts=ALWAYS),)
        )
        with ExplanationSession(
            test_bench.graph,
            parallel=ParallelConfig(
                backend="processes", workers=2, chunk_size=len(chunk_tasks)
            ),
            scheduler=SchedulerConfig(mode="chunked"),
            resilience=ResilienceConfig(max_task_retries=0),
            faults=plan,
        ) as session:
            streamed = list(session.stream(chunk_tasks))
        assert sorted(r.index for r in streamed) == list(range(8))
        assert all(r.failure is not None for r in streamed)

    def test_supervision_off_keeps_legacy_fallback(
        self, test_bench, chunk_tasks, chunk_reference
    ):
        """``max_worker_respawns=0`` preserves the pre-supervision
        contract: the broken pool demotes the whole batch to the
        serial local fallback, with its RuntimeWarning."""
        plan = FaultPlan(faults=(Fault(kind="crash", at=0),))
        with chunked_session(
            test_bench.graph,
            resilience=ResilienceConfig(max_worker_respawns=0),
            faults=plan,
        ) as session:
            with pytest.warns(RuntimeWarning):
                report = session.run(chunk_tasks)
            assert session.stats.local_fallbacks == 1
        for want, got in zip(chunk_reference.results, report.results):
            assert canonical(got.explanation) == (
                canonical(want.explanation)
            )


# ----------------------------------------------------------------------
# Satellite 2: background idle shrink for bare sessions
# ----------------------------------------------------------------------
class TestIdleShrinkTicker:
    def test_pool_shrinks_between_dispatches(self, test_bench):
        tasks = list(
            test_bench.tasks(Scenario.USER_CENTRIC, "PGPR", 2).values()
        )[:4]
        with ExplanationSession(
            test_bench.graph,
            parallel=ParallelConfig(backend="processes", workers=2),
            scheduler=SchedulerConfig(
                min_workers=1, max_workers=2, shrink_idle_seconds=0.2
            ),
        ) as session:
            session.run(tasks)
            pool = session._steal_pool
            assert pool is not None and pool.size == 2
            # No further dispatch: the background ticker alone must
            # retire the idle worker down to min_workers.
            deadline = time.monotonic() + 10.0
            while pool.size > 1 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert pool.size == 1
            assert session.stats.shrinks >= 1
            shrinks_observed = session.stats.shrinks
            # The next dispatch still works on the shrunken pool, and
            # absorbing its counters must not double-count the
            # ticker's shrink.
            report = session.run(tasks)
            assert all(r.failure is None for r in report.results)
            assert session.stats.shrinks == shrinks_observed

    def test_ticker_off_when_disabled(self, test_bench):
        tasks = list(
            test_bench.tasks(Scenario.USER_CENTRIC, "PGPR", 2).values()
        )[:2]
        with ExplanationSession(
            test_bench.graph,
            parallel=ParallelConfig(backend="processes", workers=2),
            scheduler=SchedulerConfig(
                min_workers=1, max_workers=2, shrink_idle_seconds=0.0
            ),
        ) as session:
            session.run(tasks)
            assert session._ticker is None
            time.sleep(0.3)
            assert session._steal_pool.size == 2
            assert session.stats.shrinks == 0
