"""Wire-format rehydration: bit-identical SubgraphExplanations.

The compact edge-list format replaces pickled subgraph objects on the
worker→parent result pipe; these tests pin that a decoded explanation
is indistinguishable from the original — same node insertion order,
same neighbor order inside every adjacency row, same name/relation
side tables (content *and* order), same counters — for real summaries
from all four methods, plus the structural edge cases.
"""

import pickle

import pytest

from repro.core.explanation import SubgraphExplanation
from repro.core.scenarios import Scenario
from repro.core.summarizer import Summarizer
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.serving import WireExplanation, decode_explanation, encode_explanation


def assert_bit_identical(got: SubgraphExplanation, want: SubgraphExplanation):
    g, w = got.subgraph, want.subgraph
    assert list(g.nodes()) == list(w.nodes())
    for node in w.nodes():
        assert list(g.neighbors(node).items()) == (
            list(w.neighbors(node).items())
        ), node
    assert list(g._names.items()) == list(w._names.items())
    assert list(g._relations.items()) == list(w._relations.items())
    assert g.num_edges == w.num_edges
    assert g.version == w.version
    assert got.method == want.method
    assert got.params == want.params
    assert got.task is want.task


@pytest.mark.parametrize("method", ["ST", "ST-fast", "PCST", "Union"])
@pytest.mark.parametrize("scenario", list(Scenario))
def test_round_trip_is_bit_identical(method, scenario, test_bench):
    task = next(iter(test_bench.tasks(scenario, "PGPR", 4).values()))
    explanation = Summarizer(test_bench.graph, method=method).summarize(task)
    frozen = test_bench.graph.freeze()
    wire = encode_explanation(explanation, frozen)
    assert isinstance(wire, WireExplanation)
    decoded = decode_explanation(wire, frozen, task)
    assert_bit_identical(decoded, explanation)


def test_wire_is_smaller_than_pickled_explanation(test_bench):
    task = next(
        iter(test_bench.tasks(Scenario.USER_CENTRIC, "PGPR", 4).values())
    )
    explanation = Summarizer(test_bench.graph, method="ST").summarize(task)
    frozen = test_bench.graph.freeze()
    wire = encode_explanation(explanation, frozen)
    assert len(pickle.dumps(wire)) < len(pickle.dumps(explanation))


def test_names_and_relations_survive(toy_graph):
    toy_graph.set_name("i:0", "The Matrix")
    toy_graph.set_name("e:genre:0", "sci-fi")
    from repro.graph.subgraph import edge_subgraph

    sub = edge_subgraph(
        toy_graph, [("i:0", "u:0"), ("i:0", "e:genre:0")]
    )
    explanation = SubgraphExplanation(
        subgraph=sub, task=_tiny_task(), method="X", params={"lam": 2.0}
    )
    frozen = toy_graph.freeze()
    wire = encode_explanation(explanation, frozen)
    assert isinstance(wire, WireExplanation)
    decoded = decode_explanation(wire, frozen, explanation.task)
    assert_bit_identical(decoded, explanation)
    assert decoded.subgraph.name("i:0") == "The Matrix"
    assert decoded.subgraph.relation("i:0", "e:genre:0") == "genre"


def test_isolated_nodes_survive(toy_graph):
    sub = KnowledgeGraph()
    sub.add_node("u:0")
    sub.add_node("i:1")
    explanation = SubgraphExplanation(
        subgraph=sub, task=_tiny_task(), method="Echo"
    )
    frozen = toy_graph.freeze()
    wire = encode_explanation(explanation, frozen)
    assert isinstance(wire, WireExplanation)
    decoded = decode_explanation(wire, frozen, explanation.task)
    assert_bit_identical(decoded, explanation)
    assert decoded.subgraph.num_edges == 0


def test_unknown_node_falls_back_to_pickled_object(toy_graph):
    sub = KnowledgeGraph()
    sub.add_node("u:999")  # not in the frozen view
    explanation = SubgraphExplanation(
        subgraph=sub, task=_tiny_task(), method="Echo"
    )
    frozen = toy_graph.freeze()
    payload = encode_explanation(explanation, frozen)
    assert payload is explanation
    assert decode_explanation(payload, frozen, explanation.task) is (
        explanation
    )


def _tiny_task():
    from repro.core.scenarios import SummaryTask

    return SummaryTask(
        scenario=Scenario.USER_CENTRIC,
        terminals=("u:0", "i:1"),
        paths=(),
        anchors=("i:1",),
        focus=("u:0",),
        k=1,
    )
