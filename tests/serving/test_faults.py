"""Deterministic chaos coverage for the resilience layer.

The acceptance contract (ISSUE 7): a batch of 64 tasks with one
injected worker crash and one injected hang completes on the process
backend with bit-identical successful results, at most
``max_task_retries`` redone tasks, **no** RuntimeWarning local
fallback, ``SessionStats.worker_deaths == 1`` and
``task_timeouts == 1`` — and the same failure semantics hold over the
network path (a streaming client receives exactly one frame per
submitted task, typed failures included, while a concurrent healthy
client stays unaffected).

Every scenario is pinned by a seeded :class:`FaultPlan`, so a failure
here names everything needed to replay it.
"""

import os
import threading
import time
import warnings

import pytest

from repro.api import (
    ExplanationSession,
    ParallelConfig,
    ResilienceConfig,
    TaskFailure,
)
from repro.core.batch import FAILURE_CAUSES
from repro.core.scenarios import Scenario
from repro.serving.client import (
    ExplanationClient,
    OverloadedError,
    ServerError,
)
from repro.serving.faults import HANG_SECONDS, Fault, FaultPlan
from repro.serving.server import (
    ExplanationServer,
    ServerConfig,
    ServerThread,
)

NUM_TASKS = 64
CRASH_AT = 5
HANG_AT = 11

#: Keeps firing through any retry budget a test configures.
ALWAYS = 99


def canonical(explanation):
    subgraph = explanation.subgraph
    return (
        sorted(subgraph.nodes()),
        sorted((e.source, e.target, e.weight) for e in subgraph.edges()),
    )


@pytest.fixture(scope="module")
def chaos_tasks(test_bench):
    singles = list(
        test_bench.tasks(Scenario.USER_CENTRIC, "PGPR", 2).values()
    )
    assert len(singles) >= 3
    return [singles[i % len(singles)] for i in range(NUM_TASKS)]


@pytest.fixture(scope="module")
def serial_reference(test_bench, chaos_tasks):
    with ExplanationSession(test_bench.graph) as session:
        return session.run(chaos_tasks)


def chaos_session(graph, *, resilience, faults, workers=2):
    return ExplanationSession(
        graph,
        parallel=ParallelConfig(backend="processes", workers=workers),
        resilience=resilience,
        faults=faults,
    )


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault(kind="meteor", at=0)

    def test_negative_fields_rejected(self):
        with pytest.raises(ValueError, match="'at'"):
            Fault(kind="crash", at=-1)
        with pytest.raises(ValueError, match="'seconds'"):
            Fault(kind="delay", at=0, seconds=-0.1)
        with pytest.raises(ValueError, match="'attempts'"):
            Fault(kind="crash", at=0, attempts=0)

    def test_attempt_gating(self):
        plan = FaultPlan(faults=(Fault(kind="crash", at=3, attempts=2),))
        assert plan.for_task(3, attempt=0) is not None
        assert plan.for_task(3, attempt=1) is not None
        assert plan.for_task(3, attempt=2) is None  # budget spent
        assert plan.for_task(4, attempt=0) is None

    def test_scatter_is_deterministic(self):
        a = FaultPlan.scatter(17, 64, crashes=2, hangs=1)
        b = FaultPlan.scatter(17, 64, crashes=2, hangs=1)
        assert a == b
        assert len(a.faults) == 3
        assert len({fault.at for fault in a.faults}) == 3  # distinct
        assert sorted(f.kind for f in a.faults) == [
            "crash",
            "crash",
            "hang",
        ]
        assert a != FaultPlan.scatter(18, 64, crashes=2, hangs=1)

    def test_scatter_rejects_oversubscription(self):
        with pytest.raises(ValueError, match="cannot scatter"):
            FaultPlan.scatter(1, 2, crashes=2, hangs=1)

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan(faults=(Fault(kind="delay", at=0),))


class TestTypedFailure:
    def test_causes_are_closed(self):
        with pytest.raises(ValueError, match="unknown failure cause"):
            TaskFailure(cause="gremlin")
        for cause in FAILURE_CAUSES:
            assert TaskFailure(cause=cause).cause == cause

    def test_resilience_config_validates(self):
        with pytest.raises(ValueError, match="max_task_retries"):
            ResilienceConfig(max_task_retries=-1)
        with pytest.raises(ValueError, match="task_timeout_seconds"):
            ResilienceConfig(task_timeout_seconds=-1.0)
        with pytest.raises(ValueError, match="max_worker_respawns"):
            ResilienceConfig(max_worker_respawns=-1)


class TestSupervisedRecovery:
    """Worker death / hang blast radius: the victim's task, nothing else."""

    def test_crash_and_hang_recovery_is_exact(
        self, test_bench, chaos_tasks, serial_reference
    ):
        """THE acceptance test: 1 crash + 1 hang, zero visible damage."""
        plan = FaultPlan(
            faults=(
                Fault(kind="crash", at=CRASH_AT),
                Fault(kind="hang", at=HANG_AT, seconds=30.0),
            ),
            seed=7,
        )
        with warnings.catch_warnings():
            # A silent local fallback would "pass" without exercising
            # recovery at all; make it a hard failure.
            warnings.simplefilter("error", RuntimeWarning)
            with chaos_session(
                test_bench.graph,
                resilience=ResilienceConfig(
                    max_task_retries=2, task_timeout_seconds=1.5
                ),
                faults=plan,
            ) as session:
                report = session.run(chaos_tasks)
                stats = session.stats
        assert len(report.results) == NUM_TASKS
        assert report.failed == 0
        assert all(result.ok for result in report.results)
        assert report.retried == 2  # one crash redo + one timeout redo
        assert stats.worker_deaths == 1
        assert stats.task_timeouts == 1
        assert stats.task_retries == 2
        assert stats.local_fallbacks == 0
        assert stats.pool_starts == 1  # supervision, not pool respawn
        for want, got in zip(serial_reference.results, report.results):
            assert canonical(got.explanation) == canonical(
                want.explanation
            ), got.index
        assert "resilience" in report.summary()
        assert stats.resilience_line() is not None

    def test_exhausted_retries_fail_individually(
        self, test_bench, chaos_tasks
    ):
        plan = FaultPlan(
            faults=(Fault(kind="crash", at=CRASH_AT, attempts=ALWAYS),)
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            with chaos_session(
                test_bench.graph,
                resilience=ResilienceConfig(max_task_retries=1),
                faults=plan,
            ) as session:
                report = session.run(chaos_tasks)
                deaths = session.stats.worker_deaths
        assert len(report.results) == NUM_TASKS
        assert report.failed == 1
        failed = [r for r in report.results if r.failure is not None]
        assert failed[0].index == CRASH_AT
        assert failed[0].failure.cause == "crash"
        assert failed[0].failure.retries == 1  # budget was spent
        assert failed[0].explanation is None
        assert deaths == 2  # initial try + one retry, both crashed
        assert sum(1 for r in report.results if r.ok) == NUM_TASKS - 1

    def test_timeout_fails_individually_with_zero_retries(
        self, test_bench, chaos_tasks
    ):
        plan = FaultPlan(
            faults=(
                Fault(
                    kind="hang", at=HANG_AT, seconds=30.0, attempts=ALWAYS
                ),
            )
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            with chaos_session(
                test_bench.graph,
                resilience=ResilienceConfig(
                    max_task_retries=0, task_timeout_seconds=1.0
                ),
                faults=plan,
            ) as session:
                report = session.run(chaos_tasks)
                timeouts = session.stats.task_timeouts
        assert report.failed == 1
        failed = [r for r in report.results if r.failure is not None][0]
        assert failed.index == HANG_AT
        assert failed.failure.cause == "timeout"
        assert "deadline" in failed.failure.message
        assert timeouts == 1

    def test_malformed_result_demoted_to_error_failure(
        self, test_bench, chaos_tasks
    ):
        plan = FaultPlan(
            faults=(Fault(kind="malformed", at=CRASH_AT, attempts=ALWAYS),)
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            with chaos_session(
                test_bench.graph,
                resilience=ResilienceConfig(),
                faults=plan,
            ) as session:
                report = session.run(chaos_tasks)
        assert report.failed == 1
        failed = [r for r in report.results if r.failure is not None][0]
        assert failed.index == CRASH_AT
        assert failed.failure.cause == "error"
        assert "undecodable" in failed.failure.message
        # No worker died and nothing was retried: corruption is caught
        # at decode, after the worker moved on.
        assert session.stats.worker_deaths == 0

    def test_stream_yields_failures_in_place(
        self, test_bench, chaos_tasks, serial_reference
    ):
        plan = FaultPlan(
            faults=(Fault(kind="crash", at=CRASH_AT, attempts=ALWAYS),)
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            with chaos_session(
                test_bench.graph,
                resilience=ResilienceConfig(max_task_retries=0),
                faults=plan,
            ) as session:
                streamed = list(session.stream(chaos_tasks))
        assert len(streamed) == NUM_TASKS
        assert sorted(r.index for r in streamed) == list(range(NUM_TASKS))
        failed = [r for r in streamed if r.failure is not None]
        assert [r.index for r in failed] == [CRASH_AT]
        by_index = {r.index: r for r in streamed}
        for want in serial_reference.results:
            if want.index == CRASH_AT:
                continue
            assert canonical(by_index[want.index].explanation) == (
                canonical(want.explanation)
            )

    def test_circuit_breaker_demotes_to_local_fallback(
        self, test_bench, chaos_tasks
    ):
        """``max_worker_respawns=0`` restores the legacy contract."""
        plan = FaultPlan(
            faults=(Fault(kind="crash", at=CRASH_AT, attempts=ALWAYS),)
        )
        with chaos_session(
            test_bench.graph,
            resilience=ResilienceConfig(
                max_task_retries=2, max_worker_respawns=0
            ),
            faults=plan,
        ) as session:
            with pytest.warns(RuntimeWarning, match="process backend"):
                report = session.run(chaos_tasks)
            assert session.stats.local_fallbacks == 1
        # The local rerun ignores the (process-side) fault plan, so the
        # batch still completes whole.
        assert len(report.results) == NUM_TASKS
        assert all(result.ok for result in report.results)

    def test_crashed_worker_leaks_no_shm(self, test_bench, chaos_tasks):
        """CI satellite: a mid-batch worker kill must not orphan the
        shared-memory export — the parent still unlinks every block on
        session close."""
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        before = {
            name
            for name in os.listdir("/dev/shm")
            if name.startswith("rxg")
        }
        plan = FaultPlan(faults=(Fault(kind="crash", at=CRASH_AT),))
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            with chaos_session(
                test_bench.graph,
                resilience=ResilienceConfig(max_task_retries=2),
                faults=plan,
            ) as session:
                report = session.run(chaos_tasks)
                assert session.stats.worker_deaths == 1
        assert all(result.ok for result in report.results)
        after = {
            name
            for name in os.listdir("/dev/shm")
            if name.startswith("rxg")
        }
        assert after - before == set()


@pytest.fixture(scope="module")
def wire_tasks(chaos_tasks):
    """A smaller batch keeps the per-test server round trips quick."""
    return chaos_tasks[:12]


class TestNetworkResilience:
    """The same failure semantics, over TCP."""

    def test_stream_delivers_typed_failures_exactly_once(
        self, test_bench, wire_tasks, serial_reference
    ):
        """ISSUE satellite: n submitted tasks -> exactly n frames
        (successes + typed failures), end-count verification passes,
        and a concurrent healthy client is unaffected."""
        server = ExplanationServer(
            test_bench.graph,
            parallel=ParallelConfig(backend="processes", workers=2),
            resilience=ResilienceConfig(max_task_retries=0),
            faults=FaultPlan(
                faults=(Fault(kind="crash", at=3, attempts=ALWAYS),)
            ),
        )
        healthy_errors: list[BaseException] = []
        healthy_done = threading.Event()

        def healthy_traffic() -> None:
            # Two-task batches never reach task index 3, so the fault
            # plan cannot touch them: this client sees only successes.
            try:
                with ExplanationClient(
                    "127.0.0.1", thread.port
                ) as client:
                    for _ in range(3):
                        report = client.run(wire_tasks[:2])
                        assert report.failed == 0
                        assert all(r.ok for r in report.results)
            except BaseException as error:  # surfaced in the main thread
                healthy_errors.append(error)
            finally:
                healthy_done.set()

        with ServerThread(server) as thread:
            worker = threading.Thread(target=healthy_traffic)
            worker.start()
            with ExplanationClient("127.0.0.1", thread.port) as client:
                frames = list(client.stream(wire_tasks))
            worker.join(timeout=60)
        assert healthy_done.is_set() and not healthy_errors
        assert len(frames) == len(wire_tasks)  # end-count verified too
        failed = [r for r in frames if r.failure is not None]
        assert [(r.index, r.failure.cause) for r in failed] == [
            (3, "crash")
        ]
        by_index = {r.index: r for r in frames}
        for want in serial_reference.results[: len(wire_tasks)]:
            if want.index == 3:
                continue
            assert canonical(by_index[want.index].explanation) == (
                canonical(want.explanation)
            )

    def test_run_report_round_trips_failures(self, test_bench, wire_tasks):
        server = ExplanationServer(
            test_bench.graph,
            parallel=ParallelConfig(backend="processes", workers=2),
            resilience=ResilienceConfig(max_task_retries=0),
            faults=FaultPlan(
                faults=(Fault(kind="crash", at=3, attempts=ALWAYS),)
            ),
        )
        with ServerThread(server) as thread:
            with ExplanationClient("127.0.0.1", thread.port) as client:
                report = client.run(wire_tasks)
        assert len(report.results) == len(wire_tasks)
        assert report.failed == 1
        failed = [r for r in report.results if r.failure is not None][0]
        assert failed.index == 3
        assert failed.failure.cause == "crash"

    def test_expired_deadline_is_dropped_typed(
        self, test_bench, wire_tasks
    ):
        # A loop-fault delay stalls handling past the client's budget,
        # so expiry is deterministic, not a timing race.
        server = ExplanationServer(
            test_bench.graph,
            loop_faults=FaultPlan(
                faults=(Fault(kind="delay", at=0, seconds=0.4),)
            ),
        )
        with ServerThread(server) as thread:
            with ExplanationClient("127.0.0.1", thread.port) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.explain(wire_tasks[0], deadline=0.1)
                assert excinfo.value.code == "deadline-exceeded"
                # Without a deadline the same (delayed) request serves.
                explanation = client.explain(wire_tasks[0])
        assert explanation.subgraph.num_edges > 0

    def test_backoff_absorbs_forced_overload(self, test_bench, wire_tasks):
        config = ServerConfig(retry_after_ms=20)
        server = ExplanationServer(
            test_bench.graph,
            config,
            loop_faults=FaultPlan(
                faults=(
                    Fault(kind="overload", at=0),
                    Fault(kind="overload", at=1),
                    Fault(kind="overload", at=3),
                )
            ),
        )
        with ServerThread(server) as thread:
            retrying = ExplanationClient(
                "127.0.0.1",
                thread.port,
                retries=3,
                backoff_base_seconds=0.01,
                backoff_seed=7,
            )
            with retrying as client:
                # Ordinals 0 and 1 are rejected; the second retry
                # (ordinal 2) succeeds without caller involvement.
                explanation = client.explain(wire_tasks[0])
            assert explanation.subgraph.num_edges > 0
            assert server.rejected == 2
            failfast = ExplanationClient("127.0.0.1", thread.port)
            with failfast as client:
                with pytest.raises(OverloadedError) as excinfo:
                    client.explain(wire_tasks[0])  # ordinal 3
            assert excinfo.value.retry_after_ms == 20

    def test_backoff_respects_deadline(self, test_bench, wire_tasks):
        server = ExplanationServer(
            test_bench.graph,
            ServerConfig(retry_after_ms=500),
            loop_faults=FaultPlan(
                faults=(
                    Fault(kind="overload", at=0),
                    Fault(kind="overload", at=1),
                )
            ),
        )
        with ServerThread(server) as thread:
            client = ExplanationClient(
                "127.0.0.1",
                thread.port,
                retries=5,
                backoff_base_seconds=0.01,
                backoff_seed=3,
            )
            with client:
                start = time.monotonic()
                # The 500ms retry_after floor cannot fit in a 200ms
                # budget: the client must raise instead of sleeping
                # through its own deadline.
                with pytest.raises(OverloadedError):
                    client.explain(wire_tasks[0], deadline=0.2)
                assert time.monotonic() - start < 0.5

    def test_server_thread_stop_raises_on_stuck_loop(self, test_bench):
        thread = ServerThread(ExplanationServer(test_bench.graph))
        real_join = thread._thread.join
        try:
            thread._thread.join = lambda timeout=None: None  # simulate hang
            with pytest.raises(RuntimeError, match="did not exit"):
                thread.stop()
        finally:
            thread._thread.join = real_join
            real_join(timeout=30)  # the stop coroutine did run; reap it
        assert not thread._thread.is_alive()
