"""Process-level durability: real ``kill -9``, real SIGTERM drain.

The in-process suites (:mod:`tests.serving.test_journal`,
:mod:`tests.serving.test_lifecycle`) pin the mechanisms; this module
pins the end-to-end acceptance contract against an actual server
*process* launched through the CLI:

- ``kill -9`` mid-mutating-workload, restart from the same
  ``--state-dir``: every *acknowledged* mutation survives, the graph
  recovers to the exact pre-crash version, and a replayed 64-task
  batch over the wire is bit-identical to a never-crashed local
  control — under ``RuntimeWarning``-as-error (no silent local
  fallback);
- SIGTERM mid-stream: every in-flight result and the terminating
  ``end`` frame still reach the client (zero dropped results), a new
  request is refused with a typed ``shutting-down`` frame within
  0.5s, and the process exits 0 within the drain deadline;
- the state directory holds exactly the snapshot and the journal
  afterwards — no temp-file or lock litter.

Serial in one process, fault-injected here: both legs share one
workbench build (``--scale test`` matches the ``test_bench`` fixture,
so the subprocess's graph is bit-identical to the local control's).
"""

import os
import re
import subprocess
import sys
import time
import warnings
from pathlib import Path

import pytest

from repro.api import ExplanationSession, protocol
from repro.core.scenarios import Scenario
from repro.serving.client import ExplanationClient, ShuttingDownError
from repro.serving.journal import JOURNAL_NAME, SNAPSHOT_NAME

SRC = Path(__file__).resolve().parents[2] / "src"
BANNER = re.compile(r"on 127\.0\.0\.1:(\d+)")
NUM_TASKS = 64

#: (source, target, weight) edges the workload mutates in, one ack at
#: a time. New item nodes, so they exist only via the mutation RPCs.
EDITS = [("u:0", f"i:77{k:02d}", 1.0 + k) for k in range(8)]
ACKED = 5  # the crash lands after this many acknowledged mutations


def start_server(state_dir: Path) -> tuple[subprocess.Popen, int]:
    """Launch ``serve --scale test`` and wait for its port banner."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    code = (
        "from repro.cli import main; raise SystemExit(main("
        f"['serve', '--scale', 'test', '--port', '0', "
        f"'--state-dir', {str(state_dir)!r}]))"
    )
    proc = subprocess.Popen(
        [sys.executable, "-W", "error::RuntimeWarning", "-c", code],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    line = proc.stdout.readline()
    match = BANNER.search(line)
    if match is None:  # startup failed: surface whatever it printed
        proc.kill()
        rest = proc.stdout.read()
        raise AssertionError(f"no port banner; server said: {line}{rest}")
    return proc, int(match.group(1))


@pytest.fixture(scope="module")
def batch_tasks(test_bench):
    singles = list(
        test_bench.tasks(Scenario.USER_CENTRIC, "PGPR", 2).values()
    )
    assert len(singles) >= 3
    return [singles[i % len(singles)] for i in range(NUM_TASKS)]


def assert_same_summary(got, want):
    g, w = got.subgraph, want.subgraph
    assert list(g.nodes()) == list(w.nodes())
    for node in w.nodes():
        assert list(g.neighbors(node).items()) == (
            list(w.neighbors(node).items())
        ), node
    assert list(g._names.items()) == list(w._names.items())
    assert list(g._relations.items()) == list(w._relations.items())
    assert g.num_edges == w.num_edges
    assert g.version == w.version


class TestKillDashNine:
    def test_acked_mutations_survive_sigkill(
        self, test_bench, batch_tasks, tmp_path
    ):
        # The never-crashed control: the same seed graph (the codec
        # round trip preserves every iteration order and the version)
        # with exactly the acknowledged mutations applied.
        control = protocol.graph_state_from_json(
            protocol.graph_state_to_json(test_bench.graph)
        )
        for source, target, weight in EDITS[:ACKED]:
            control.add_edge(source, target, weight)

        proc, port = start_server(tmp_path)
        try:
            with ExplanationClient("127.0.0.1", port) as client:
                acked_version = 0
                for source, target, weight in EDITS[:ACKED]:
                    acked_version = client.add_edge(source, target, weight)
                # kill -9 mid-workload: the remaining edits never land
                # and the process gets no chance to flush anything.
                proc.kill()
                proc.wait(timeout=30)
                for source, target, weight in EDITS[ACKED:]:
                    with pytest.raises(OSError):
                        client.add_edge(source, target, weight)
        finally:
            proc.kill()
            proc.wait(timeout=30)
        assert control.version == acked_version

        # Restart from the wreckage: recovery must replay every acked
        # mutation — and nothing else.
        reborn, port = start_server(tmp_path)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error", RuntimeWarning)
                with ExplanationClient("127.0.0.1", port) as client:
                    default = client.health()["graphs"]["default"]
                    assert default["version"] == acked_version
                    assert default["journal"]["replayed_records"] == ACKED
                    report = client.run(batch_tasks)
                with ExplanationSession(control) as session:
                    want = session.run(batch_tasks)
            assert len(report.results) == NUM_TASKS
            for got, reference in zip(report.results, want.results):
                assert got.failure is None, got.failure
                assert_same_summary(
                    got.explanation, reference.explanation
                )
        finally:
            reborn.terminate()
            reborn.wait(timeout=30)
        # State-dir hygiene: exactly the snapshot and the journal, no
        # temp files or litter from either lifetime.
        assert sorted(p.name for p in tmp_path.iterdir()) == sorted(
            ["default"]
        )
        assert sorted(
            p.name for p in (tmp_path / "default").iterdir()
        ) == sorted([JOURNAL_NAME, SNAPSHOT_NAME])


class TestSigtermDrain:
    def test_drain_streams_everything_then_exits_zero(
        self, batch_tasks, tmp_path
    ):
        proc, port = start_server(tmp_path)
        try:
            with ExplanationClient("127.0.0.1", port) as client:
                stream = client.stream(batch_tasks)
                results = [next(stream)]  # the batch is now in flight
                proc.send_signal(15)  # SIGTERM: drain, don't drop
                # A new request is refused, typed and fast, while the
                # admitted stream keeps computing.
                with ExplanationClient("127.0.0.1", port) as probe:
                    start = time.monotonic()
                    with pytest.raises(ShuttingDownError) as excinfo:
                        probe.run([batch_tasks[0]])
                    assert time.monotonic() - start < 0.5
                    assert excinfo.value.retry_after_ms is not None
                # Zero dropped results: the rest of the stream and its
                # end frame all arrive despite the drain.
                results.extend(stream)
            assert sorted(r.index for r in results) == (
                list(range(NUM_TASKS))
            )
            assert all(r.failure is None for r in results)
            exit_code = proc.wait(timeout=30)
            assert exit_code == 0, proc.stdout.read()
            output = proc.stdout.read()
            assert "drain requested" in output
            assert "server stopped" in output
        finally:
            proc.kill()
            proc.wait(timeout=30)
