"""Trace propagation under faults: one trace tells the whole story.

The acceptance contract (ISSUE 10, satellite d): a seeded worker crash
plus retry produces ONE trace containing the failed attempt
(``task.attempt`` with ``outcome="crash"``), the supervisor's
``worker.respawn``, and the successful retry's ``worker.compute`` span
with ``attempt=1`` — and the worker-side spans survive the result-pipe
merge even though the crashed attempt's ambient buffer died with its
worker.
"""

import warnings

import pytest

from repro.api import (
    ExplanationSession,
    ObservabilityConfig,
    ParallelConfig,
    ResilienceConfig,
)
from repro.core.scenarios import Scenario
from repro.serving.faults import Fault, FaultPlan

NUM_TASKS = 64
CRASH_AT = 5


def walk(span):
    yield span
    for child in span["children"]:
        yield from walk(child)


def task_groups(trace):
    """Map task index -> list of child span dicts of that task span."""
    groups = {}
    for span in trace["root"]["children"]:
        if span["name"] == "task":
            groups[span["attrs"]["index"]] = span["children"]
    return groups


@pytest.fixture(scope="module")
def chaos_tasks(test_bench):
    singles = list(
        test_bench.tasks(Scenario.USER_CENTRIC, "PGPR", 2).values()
    )
    return [singles[i % len(singles)] for i in range(NUM_TASKS)]


@pytest.fixture(scope="module")
def traced_run(test_bench, chaos_tasks):
    """One traced 64-task run with a seeded crash at task 5."""
    plan = FaultPlan(
        faults=(Fault(kind="crash", at=CRASH_AT, attempts=1),)
    )
    with warnings.catch_warnings():
        # A silent local fallback would bypass both the scheduler and
        # the trace plumbing under test; make it a hard failure.
        warnings.simplefilter("error", RuntimeWarning)
        with ExplanationSession(
            test_bench.graph,
            parallel=ParallelConfig(backend="processes", workers=2),
            resilience=ResilienceConfig(max_task_retries=2),
            faults=plan,
            obs=ObservabilityConfig(trace=True),
        ) as session:
            report = session.run(chaos_tasks)
            trace = session.last_trace()
    return report, trace


class TestTraceUnderFaults:
    def test_run_recovers_completely(self, traced_run):
        report, _ = traced_run
        assert len(report.results) == NUM_TASKS
        assert report.failed == 0
        assert report.retried == 1

    def test_one_trace_covers_the_batch(self, traced_run):
        report, trace = traced_run
        assert trace is not None
        assert trace["name"] == "run"
        assert trace["root"]["attrs"]["tasks"] == NUM_TASKS
        groups = task_groups(trace)
        assert set(groups) == set(range(NUM_TASKS))
        # every result cites the same trace
        for result in report.results:
            assert result.trace["trace_id"] == trace["trace_id"]

    def test_failed_attempt_respawn_and_retry_in_one_trace(
        self, traced_run
    ):
        _, trace = traced_run
        spans = task_groups(trace)[CRASH_AT]
        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        (attempt,) = by_name["task.attempt"]
        assert attempt["attrs"]["outcome"] == "crash"
        assert attempt["attrs"]["attempt"] == 0
        assert "worker.respawn" in by_name
        (compute,) = by_name["worker.compute"]
        assert compute["attrs"]["attempt"] == 1  # the retry succeeded

    def test_worker_spans_survive_pipe_merge(self, traced_run):
        _, trace = traced_run
        groups = task_groups(trace)
        for index in range(NUM_TASKS):
            names = {span["name"] for span in groups[index]}
            assert "queue_wait" in names, index
            assert "worker.compute" in names, index
            assert "worker.encode" in names, index
        # untouched tasks completed on their first attempt
        other = [s for s in groups[CRASH_AT + 1] if s["name"] == "worker.compute"]
        assert other[0]["attrs"]["attempt"] == 0

    def test_session_spans_present(self, traced_run):
        _, trace = traced_run
        names = {span["name"] for span in walk(trace["root"])}
        assert {
            "session.freeze_export",
            "session.pool",
            "session.dispatch",
        } <= names

    def test_result_payload_is_the_task_subtree(self, traced_run):
        report, trace = traced_run
        payload = report.results[CRASH_AT].trace
        names = [span["name"] for span in payload["spans"]]
        assert names[0] == "task"
        assert "task.attempt" in names
        assert "worker.respawn" in names
        assert "worker.compute" in names
        # payload spans all belong to this task's subtree
        ids = {span["span_id"] for span in payload["spans"]}
        for span in payload["spans"][1:]:
            assert span["parent_id"] in ids


class TestTracingDisabled:
    def test_no_trace_recorded_and_results_bare(
        self, test_bench, chaos_tasks
    ):
        with ExplanationSession(
            test_bench.graph,
            parallel=ParallelConfig(backend="processes", workers=2),
        ) as session:
            report = session.run(chaos_tasks[:8])
        assert session.last_trace() is None
        assert all(result.trace is None for result in report.results)
        assert report.failed == 0
