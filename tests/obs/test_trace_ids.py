"""Trace/span id generation must not depend on PYTHONHASHSEED.

Ids come from ``os.urandom``, never ``hash()`` — the same invariant
the closure-store digests obey. Two interpreters with different hash
seeds must both produce well-formed, unique ids.
"""

import subprocess
import sys

from repro.obs.trace import new_span_id, new_trace_id

_PROBE = (
    "from repro.obs.trace import new_trace_id, new_span_id;"
    "print(new_trace_id());print(new_span_id())"
)


def _probe(hash_seed: str, pythonpath: str) -> tuple[str, str]:
    result = subprocess.run(
        [sys.executable, "-c", _PROBE],
        env={"PYTHONHASHSEED": hash_seed, "PYTHONPATH": pythonpath},
        capture_output=True,
        text=True,
        check=True,
    )
    trace_id, span_id = result.stdout.split()
    return trace_id, span_id


class TestIdShape:
    def test_trace_id_is_16_hex(self):
        value = new_trace_id()
        assert len(value) == 16
        int(value, 16)  # raises if not hex

    def test_span_id_is_8_hex(self):
        value = new_span_id()
        assert len(value) == 8
        int(value, 16)

    def test_ids_are_unique(self):
        assert len({new_trace_id() for _ in range(64)}) == 64
        assert len({new_span_id() for _ in range(64)}) == 64


class TestHashSeedIndependence:
    def test_well_formed_under_any_hash_seed(self):
        import repro

        pythonpath = repro.__path__[0].rsplit("/", 1)[0]
        for seed in ("0", "1", "12345"):
            trace_id, span_id = _probe(seed, pythonpath)
            assert len(trace_id) == 16
            assert len(span_id) == 8
            int(trace_id, 16)
            int(span_id, 16)
