"""Trace plumbing in isolation: builder, collector, tracer, logger.

Worker-merge and cross-process behavior are covered by
``test_trace_faults.py`` / ``test_server_obs.py``; this module pins
the single-process contracts those tests build on.
"""

import io
import json

import pytest

from repro.obs.log import StructuredLogger
from repro.obs.trace import (
    TraceBuilder,
    TraceCollector,
    Tracer,
    format_trace,
)


class TestTracer:
    def test_disabled_begin_returns_none(self):
        assert Tracer(enabled=False).begin("run") is None

    def test_enabled_begin_builds(self):
        trace = Tracer(enabled=True).begin("run", tasks=3)
        assert trace is not None
        assert trace.root.attrs == {"tasks": 3}

    def test_adopts_caller_trace_id(self):
        trace = Tracer(enabled=True).begin("run", trace_id="cafe01")
        assert trace.trace_id == "cafe01"


class TestTraceBuilder:
    def test_tree_nests_children_under_parents(self):
        trace = TraceBuilder("run")
        task = trace.task_span(0)
        trace.event("compute", 0.01, parent=task)
        trace.event("session.pool", 0.02)
        tree = trace.finish()
        assert tree["name"] == "run"
        assert tree["span_count"] == 4
        children = {
            span["name"]: span for span in tree["root"]["children"]
        }
        assert children["task"]["attrs"] == {"index": 0}
        assert [
            span["name"] for span in children["task"]["children"]
        ] == ["compute"]
        assert children["session.pool"]["duration_ms"] == (
            pytest.approx(20.0, rel=0.01)
        )

    def test_merge_worker_reparents_by_index(self):
        trace = TraceBuilder("run")
        trace.task_span(4)
        trace.merge_worker(
            [
                (4, "worker.compute", 0.05, {"worker": 7}),
                (None, "store.evict", 0.0, {"bytes": 10}),
            ]
        )
        tree = trace.finish()
        by_name = {
            span["name"]: span for span in tree["root"]["children"]
        }
        task_children = by_name["task"]["children"]
        assert [span["name"] for span in task_children] == [
            "worker.compute"
        ]
        assert task_children[0]["attrs"] == {"worker": 7}
        assert by_name["store.evict"]["attrs"] == {"bytes": 10}

    def test_task_payload_is_the_task_subtree(self):
        trace = TraceBuilder("run")
        trace.event("compute", 0.01, parent=trace.task_span(0))
        trace.event("compute", 0.01, parent=trace.task_span(1))
        payload = trace.task_payload(0)
        assert payload["trace_id"] == trace.trace_id
        assert [span["name"] for span in payload["spans"]] == [
            "task",
            "compute",
        ]
        assert payload["spans"][0]["attrs"] == {"index": 0}
        assert trace.task_payload(99) is None

    def test_finish_closes_open_spans(self):
        trace = TraceBuilder("run")
        trace.span("open-ended")
        tree = trace.finish()
        (child,) = tree["root"]["children"]
        assert child["duration_ms"] is not None

    def test_finish_publishes_to_collector(self):
        collector = TraceCollector(capacity=2)
        for name in ("a", "b", "c"):
            TraceBuilder(name, collector=collector).finish()
        assert len(collector) == 2
        assert collector.last()["name"] == "c"

    def test_collector_get_by_id(self):
        collector = TraceCollector()
        trace = TraceBuilder("run", collector=collector)
        trace.finish()
        assert collector.get(trace.trace_id)["name"] == "run"
        assert collector.get("missing") is None

    def test_slow_request_logged_with_breakdown(self):
        stream = io.StringIO()
        logger = StructuredLogger(
            stream, json_lines=True, enabled=True
        )
        trace = TraceBuilder(
            "run", slow_ms=0.0001, logger=logger
        )
        trace.event("compute", 0.01)
        trace.finish()
        record = json.loads(stream.getvalue())
        assert record["event"] == "slow_request"
        assert record["trace_id"] == trace.trace_id
        assert record["spans"]["compute"]["count"] == 1

    def test_fast_request_not_logged(self):
        stream = io.StringIO()
        logger = StructuredLogger(stream, enabled=True)
        TraceBuilder("run", slow_ms=60_000.0, logger=logger).finish()
        assert stream.getvalue() == ""


class TestFormatTrace:
    def test_renders_every_span_indented(self):
        trace = TraceBuilder("run")
        trace.event("compute", 0.01, parent=trace.task_span(0))
        text = format_trace(trace.finish())
        lines = text.splitlines()
        assert lines[0].startswith(f"trace {trace.trace_id}")
        assert any(line.startswith("    task") for line in lines)
        assert any(line.startswith("      compute") for line in lines)

    def test_none_is_safe(self):
        assert format_trace(None) == "(no trace recorded)"


class TestStructuredLogger:
    def test_disabled_is_silent(self):
        stream = io.StringIO()
        StructuredLogger(stream).emit("event", a=1)
        assert stream.getvalue() == ""

    def test_text_lines(self):
        stream = io.StringIO()
        StructuredLogger(stream, enabled=True).emit(
            "worker_respawn", respawns=2
        )
        line = stream.getvalue().strip()
        assert "event=worker_respawn" in line
        assert "respawns=2" in line

    def test_json_lines(self):
        stream = io.StringIO()
        StructuredLogger(stream, json_lines=True, enabled=True).emit(
            "task_timeout", task=3, timeout_seconds=0.5
        )
        record = json.loads(stream.getvalue())
        assert record["event"] == "task_timeout"
        assert record["task"] == 3
