"""Observability over the wire: trace ids, trace/metrics/stats ops.

The acceptance contract (ISSUE 10): a served 64-task ``run`` over the
process backend yields a complete trace tree per request — the
client's minted ``trace_id``, the server's admission-wait span, the
scheduler's per-task queue-wait spans and the workers' compute spans,
all under one id, fetched via the server ``trace`` op. The ``metrics``
op parses as Prometheus text; ``stats`` reports uptime and per-graph
request counts; ``health`` reports metrics liveness without touching
graph state.
"""

import pytest

from repro.api import ObservabilityConfig, ParallelConfig
from repro.core.scenarios import Scenario
from repro.obs.registry import parse_prometheus
from repro.serving.client import ExplanationClient
from repro.serving.server import (
    ExplanationServer,
    ServerConfig,
    ServerThread,
)

NUM_TASKS = 64


def walk(span):
    yield span
    for child in span["children"]:
        yield from walk(child)


@pytest.fixture(scope="module")
def traced_server(test_bench):
    server = ExplanationServer(
        test_bench.graph,
        ServerConfig(),
        parallel=ParallelConfig(backend="processes", workers=2),
        obs=ObservabilityConfig(trace=True),
    )
    with ServerThread(server) as thread:
        yield thread


@pytest.fixture()
def client(traced_server):
    with ExplanationClient("127.0.0.1", traced_server.port) as c:
        yield c


@pytest.fixture(scope="module")
def batch_tasks(test_bench):
    singles = list(
        test_bench.tasks(Scenario.USER_CENTRIC, "PGPR", 2).values()
    )
    return [singles[i % len(singles)] for i in range(NUM_TASKS)]


class TestTraceOp:
    def test_served_run_yields_complete_trace_tree(
        self, client, batch_tasks
    ):
        report = client.run(batch_tasks)
        assert report.failed == 0
        assert client.last_trace_id is not None

        trace = client.trace()
        assert trace is not None
        # the client's minted id names the server-side trace
        assert trace["trace_id"] == client.last_trace_id
        assert trace["name"] == "run"

        names = {span["name"] for span in walk(trace["root"])}
        assert "server.queue_wait" in names  # admission wait
        assert "queue_wait" in names  # scheduler per-task wait
        assert "worker.compute" in names  # worker span, post-merge
        assert "task" in names

        task_indexes = {
            span["attrs"]["index"]
            for span in trace["root"]["children"]
            if span["name"] == "task"
        }
        assert task_indexes == set(range(NUM_TASKS))

    def test_explain_traced_too(self, client, batch_tasks):
        client.explain(batch_tasks[0])
        trace = client.trace()
        assert trace["trace_id"] == client.last_trace_id
        assert trace["name"] == "explain"

    def test_explicit_and_unknown_ids(self, client, batch_tasks):
        client.run(batch_tasks[:4])
        wanted = client.last_trace_id
        client.run(batch_tasks[4:8])  # newer trace displaces "last"
        fetched = client.trace(wanted)
        assert fetched["trace_id"] == wanted
        assert client.trace("0" * 16) is None


class TestMetricsOp:
    def test_exposition_parses(self, client, batch_tasks):
        client.run(batch_tasks[:8])
        families = parse_prometheus(client.metrics())
        assert "repro_queue_wait_seconds_count" in families
        assert "repro_session_counter" in families
        assert "repro_server_requests_total" in families
        counters = {
            labels["counter"]: value
            for labels, value in families["repro_session_counter"]
            if labels["graph"] == "default"
        }
        assert counters["runs"] >= 1
        assert counters["tasks"] >= 8


class TestStatsOp:
    def test_uptime_and_request_counts(self, client, batch_tasks):
        client.run(batch_tasks[:4])
        stats = client.stats()
        assert stats["uptime_seconds"] > 0.0
        assert stats["requests"] >= 1
        assert stats["server"]["requests"]["default"] >= 1
        assert "runs" in stats["session"]


class TestHealthOp:
    def test_metrics_liveness_reported(self, client):
        health = client.health()
        assert health["metrics"]["enabled"] is True
        assert health["metrics"]["tracing"] is True
        assert health["metrics"]["families"] >= 1
