"""Metrics registry semantics: counters, gauges, histograms, exposition.

The contract: get-or-create families keyed by name (kind/label
mismatches fail loudly), exponential histogram buckets, and a text
exposition that round-trips through :func:`parse_prometheus` — the
same parser the CI scrape check and the ``metrics`` CLI probe use.
"""

import math

import pytest

from repro.obs.registry import (
    MetricsRegistry,
    exponential_buckets,
    parse_prometheus,
    render_simple,
)


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total", "help text")
        counter.inc()
        counter.inc(3)
        assert counter.value() == 4.0

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_labelled_samples_are_distinct(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "repro_requests_total", labels=("graph",)
        )
        counter.inc(graph="a")
        counter.inc(2, graph="b")
        assert counter.value(graph="a") == 1.0
        assert counter.value(graph="b") == 2.0


class TestGauge:
    def test_set(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_depth")
        gauge.set(7)
        gauge.set(3)
        assert gauge.value() == 3.0

    def test_callback_sampled_at_render(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_live")
        box = {"value": 1}
        gauge.set_fn(lambda: box["value"])
        assert "repro_live 1" in gauge.render()
        box["value"] = 5
        assert "repro_live 5" in gauge.render()


class TestHistogram:
    def test_exponential_buckets(self):
        buckets = exponential_buckets(start=1.0, factor=2.0, count=4)
        assert buckets == (1.0, 2.0, 4.0, 8.0)

    def test_observe_counts_and_sum(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "repro_seconds", buckets=(1.0, 2.0, 4.0)
        )
        for value in (0.5, 1.5, 3.0, 100.0):
            hist.observe(value)
        assert hist.sample_count() == 4
        assert hist.sample_sum() == pytest.approx(105.0)

    def test_cumulative_bucket_exposition(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "repro_seconds", buckets=(1.0, 2.0)
        )
        for value in (0.5, 1.5, 9.0):
            hist.observe(value)
        text = hist.render()
        assert 'repro_seconds_bucket{le="1"} 1' in text
        assert 'repro_seconds_bucket{le="2"} 2' in text
        assert 'repro_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_seconds_count 3" in text


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_x_total")
        again = registry.counter("repro_x_total")
        assert first is again

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_x_total")

    def test_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", labels=("graph",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("repro_x_total", labels=("other",))

    def test_render_parse_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total", "a").inc(2)
        registry.gauge("repro_b", "b", labels=("graph",)).set(
            1.5, graph="g/1"
        )
        hist = registry.histogram("repro_c_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        parsed = parse_prometheus(registry.render())
        assert parsed["repro_a_total"] == [({}, 2.0)]
        assert parsed["repro_b"] == [({"graph": "g/1"}, 1.5)]
        buckets = dict(
            (labels["le"], value)
            for labels, value in parsed["repro_c_seconds_bucket"]
        )
        assert buckets["0.1"] == 1.0
        assert buckets["+Inf"] == 1.0
        assert parsed["repro_c_seconds_count"] == [({}, 1.0)]

    def test_zero_sample_families_still_render(self):
        registry = MetricsRegistry()
        registry.counter("repro_quiet_total", "never incremented")
        parsed = parse_prometheus(registry.render())
        assert parsed["repro_quiet_total"] == [({}, 0.0)]


class TestRenderSimple:
    def test_view_block_parses(self):
        text = render_simple(
            "repro_session_counter",
            "gauge",
            "view",
            [
                ({"graph": "default", "counter": "runs"}, 3),
                ({"graph": "default", "counter": "tasks"}, 64),
            ],
        )
        parsed = parse_prometheus(text)
        assert (
            {"graph": "default", "counter": "tasks"},
            64.0,
        ) in parsed["repro_session_counter"]

    def test_histogram_kind_rejected(self):
        with pytest.raises(ValueError, match="counters and gauges"):
            render_simple("repro_x", "histogram", "", [])


class TestParser:
    def test_malformed_sample_line_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus("repro_ok 1\nthis is not a sample\n")

    def test_inf_values(self):
        parsed = parse_prometheus("repro_x +Inf\nrepro_y -Inf\n")
        assert parsed["repro_x"] == [({}, math.inf)]
        assert parsed["repro_y"] == [({}, -math.inf)]

    def test_label_escapes(self):
        parsed = parse_prometheus(
            'repro_x{path="a\\\\b\\"c\\nd"} 1\n'
        )
        ((labels, value),) = parsed["repro_x"]
        assert labels["path"] == 'a\\b"c\nd'
        assert value == 1.0
