"""Pin the SessionStats schema and the shared stat-line renderer.

``SessionStats.to_dict()`` is the one schema every counter consumer
reads — the CLI footer, the experiment runner, the server ``stats``
op and the metrics exposition's per-session view. Adding a counter is
deliberate: it must show up here, in declaration order.
"""

from repro.api.session import SessionStats, _stat_line

EXPECTED_KEYS = (
    "freezes",
    "exports",
    "pool_starts",
    "invalidations",
    "runs",
    "tasks",
    "steals",
    "grows",
    "shrinks",
    "peak_queue_depth",
    "worker_deaths",
    "task_retries",
    "task_timeouts",
    "local_fallbacks",
    "store_hits",
    "store_misses",
    "store_evictions",
    "store_bytes",
)


class TestToDict:
    def test_key_set_and_order_are_pinned(self):
        assert tuple(SessionStats().to_dict()) == EXPECTED_KEYS

    def test_values_track_the_counters(self):
        stats = SessionStats()
        stats.runs = 3
        stats.store_hits = 7
        data = stats.to_dict()
        assert data["runs"] == 3
        assert data["store_hits"] == 7
        assert data["steals"] == 0


class TestStatLine:
    def test_shared_format(self):
        line = _stat_line("store", {"hits": 3, "bytes": 128})
        assert line == "  store      hits=3 bytes=128"


class TestReportLines:
    def test_quiet_stats_render_nothing(self):
        stats = SessionStats()
        assert stats.scheduler_line() is None
        assert stats.resilience_line() is None
        assert stats.cache_line() is None

    def test_scheduler_line(self):
        stats = SessionStats(steals=4, grows=1, peak_queue_depth=9)
        assert stats.scheduler_line() == (
            "  scheduler  steals=4 grows=1 shrinks=0 peak_queue_depth=9"
        )

    def test_resilience_line(self):
        stats = SessionStats(worker_deaths=1, task_retries=2)
        assert stats.resilience_line() == (
            "  resilience worker_deaths=1 task_retries=2 "
            "task_timeouts=0 local_fallbacks=0"
        )

    def test_cache_line(self):
        stats = SessionStats(
            store_hits=3, store_misses=1, store_bytes=256
        )
        assert stats.cache_line() == (
            "  store      hits=3/4 (75%) evictions=0 bytes=256"
        )
