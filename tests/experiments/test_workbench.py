"""Workbench caching and task construction."""

import pytest

from repro.core.explanation import PathSetExplanation, SubgraphExplanation
from repro.core.scenarios import Scenario
from repro.experiments.workbench import BASELINE, Workbench, st_label


class TestCaching:
    def test_get_memoizes(self, test_config):
        assert Workbench.get(test_config) is Workbench.get(test_config)

    def test_graph_cached(self, test_bench):
        assert test_bench.graph is test_bench.graph

    def test_recommender_cached(self, test_bench):
        assert test_bench.recommender("PGPR") is test_bench.recommender(
            "PGPR"
        )

    def test_summary_cached(self, test_bench):
        subject = test_bench.eval_users[0]
        label = st_label(test_bench.config.lambdas[0])
        a = test_bench.explanation(
            label, Scenario.USER_CENTRIC, "PGPR", 2, subject
        )
        b = test_bench.explanation(
            label, Scenario.USER_CENTRIC, "PGPR", 2, subject
        )
        assert a is b


class TestSampling:
    def test_sampled_users_nonempty(self, test_bench):
        assert test_bench.sampled_users
        assert all(u.startswith("u:") for u in test_bench.sampled_users)

    def test_eval_users_capped(self, test_bench):
        assert len(test_bench.eval_users) <= test_bench.config.eval_users

    def test_item_buckets_disjoint(self, test_bench):
        popular, unpopular = test_bench.sampled_items
        assert not set(popular) & set(unpopular)

    def test_user_groups_by_gender(self, test_bench):
        gender = test_bench.dataset.user_gender
        for label, members in test_bench.user_groups.items():
            expected = "M" if label == "male" else "F"
            for user in members:
                assert gender[int(user.split(":")[1])] == expected


class TestTasks:
    @pytest.mark.parametrize(
        "scenario",
        [
            Scenario.USER_CENTRIC,
            Scenario.ITEM_CENTRIC,
            Scenario.USER_GROUP,
            Scenario.ITEM_GROUP,
        ],
    )
    def test_tasks_built_for_all_scenarios(self, test_bench, scenario):
        tasks = test_bench.tasks(scenario, "PGPR", 3)
        assert tasks
        for task in tasks.values():
            assert task.scenario is scenario
            assert task.terminals
            assert task.paths

    def test_user_centric_subjects_are_eval_users(self, test_bench):
        tasks = test_bench.tasks(Scenario.USER_CENTRIC, "PGPR", 2)
        assert set(tasks) <= set(test_bench.eval_users)

    def test_item_centric_k_grows_audience(self, test_bench):
        small = test_bench.tasks(Scenario.ITEM_CENTRIC, "PGPR", 1)
        large = test_bench.tasks(Scenario.ITEM_CENTRIC, "PGPR",
                                 test_bench.config.k_max)
        total_small = sum(len(t.paths) for t in small.values())
        total_large = sum(len(t.paths) for t in large.values())
        assert total_large >= total_small


class TestExplanations:
    def test_baseline_is_path_set(self, test_bench):
        subject = test_bench.eval_users[0]
        explanation = test_bench.explanation(
            BASELINE, Scenario.USER_CENTRIC, "PGPR", 2, subject
        )
        assert isinstance(explanation, PathSetExplanation)

    def test_summary_is_subgraph(self, test_bench):
        subject = test_bench.eval_users[0]
        explanation = test_bench.explanation(
            "PCST", Scenario.USER_CENTRIC, "PGPR", 2, subject
        )
        assert isinstance(explanation, SubgraphExplanation)

    def test_unknown_subject_returns_none(self, test_bench):
        assert (
            test_bench.explanation(
                BASELINE, Scenario.USER_CENTRIC, "PGPR", 2, "u:999999"
            )
            is None
        )

    def test_method_labels_order(self, test_bench):
        labels = test_bench.method_labels()
        assert labels[0] == BASELINE
        assert labels[-1] == "PCST"
        assert len(labels) == 2 + len(test_bench.config.lambdas)

    def test_unknown_method_label_raises(self, test_bench):
        with pytest.raises(ValueError):
            test_bench.summarizer("MAGIC")

    def test_explanations_batch(self, test_bench):
        explanations = test_bench.explanations(
            BASELINE, Scenario.USER_CENTRIC, "PGPR", 2
        )
        assert len(explanations) == len(
            test_bench.tasks(Scenario.USER_CENTRIC, "PGPR", 2)
        )
