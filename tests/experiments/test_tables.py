"""Table reproductions."""

import pytest

from repro.experiments.tables import (
    angelopoulos_example,
    table1_example,
    table2,
    table3,
)


class TestTable1:
    def test_paper_numbers_reproduced(self):
        """Paper: 'the original explanations had a total length of 13,
        the summarization achieves a length of 6 edges'."""
        result = table1_example()
        assert result.total_path_edges == 13
        assert result.summary_edges == 6

    def test_summary_keeps_key_connectors(self):
        result = table1_example()
        assert "Theo Angelopoulos" in result.summary_sentence
        assert "Drama" in result.summary_sentence

    def test_summary_names_all_three_movies(self):
        result = table1_example()
        for title in (
            "Eternity and a Day",
            "The Beekeeper",
            "The Suspended Step of the Stork",
        ):
            assert title in result.summary_sentence

    def test_three_path_sentences(self):
        result = table1_example()
        assert len(result.path_sentences) == 3

    def test_example_graph_paths_valid(self):
        graph, paths = angelopoulos_example()
        for path in paths:
            assert path.is_valid_in(graph)


class TestTable2:
    def test_stats_shape(self, test_config):
        stats = table2(test_config, approx_pairs=16)
        assert stats.num_users > 0
        assert stats.num_items > 0
        assert stats.num_external > 0
        assert stats.num_edges > stats.num_nodes  # dense like ML1M
        assert stats.diameter >= 2


class TestTable3:
    def test_five_graphs(self):
        rows = table3(scale=0.004)
        assert len(rows) == 5

    def test_sizes_increase(self):
        rows = table3(scale=0.004)
        nodes = [stats.num_nodes for _spec, stats in rows]
        assert nodes == sorted(nodes)
        edges = [stats.num_edges for _spec, stats in rows]
        assert edges == sorted(edges)

    def test_realized_close_to_spec(self):
        rows = table3(scale=0.004)
        for spec, stats in rows:
            assert stats.num_nodes == spec.total_nodes
            assert stats.num_edges <= spec.num_edges
