"""ASCII report formatting."""

from repro.experiments.report import format_series_table, format_table


class TestFormatTable:
    def test_headers_and_rows_rendered(self):
        text = format_table(
            "Demo", ["name", "value"], [["alpha", 1.5], ["beta", 2]]
        )
        assert "Demo" in text
        assert "alpha" in text
        assert "1.5000" in text

    def test_small_floats_scientific(self):
        text = format_table("T", ["v"], [[0.00001]])
        assert "e-05" in text

    def test_empty_rows(self):
        text = format_table("Empty", ["a", "b"], [])
        assert "Empty" in text
        assert "a" in text


class TestFormatSeriesTable:
    def test_series_by_k(self):
        series = {
            "ST": {1: 0.5, 2: 0.25},
            "PCST": {1: 0.1},
        }
        text = format_series_table("Fig X", series)
        assert "Fig X" in text
        assert "ST" in text
        assert "PCST" in text
        assert "-" in text  # missing PCST k=2 value

    def test_string_x_values(self):
        series = {"ST": {"G1": 1.0, "G2": 2.0}}
        text = format_series_table("Fig 11", series, x_label="graph")
        assert "G1" in text
        assert "graph" in text
