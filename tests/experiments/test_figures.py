"""Figure series builders (structure + key paper shapes at test scale)."""

import pytest

from repro.core.scenarios import Scenario
from repro.experiments import figures
from repro.experiments.workbench import BASELINE


class TestMetricSeries:
    def test_series_covers_methods_and_k(self, test_bench):
        series = figures.metric_series(
            test_bench, Scenario.USER_CENTRIC, "PGPR", "comprehensibility"
        )
        assert set(series) == set(test_bench.method_labels())
        for points in series.values():
            assert set(points) <= set(test_bench.config.k_values)

    def test_st_beats_baseline_comprehensibility(self, test_bench):
        """The paper's headline claim (Fig 2) at k_max."""
        series = figures.metric_series(
            test_bench, Scenario.USER_CENTRIC, "PGPR", "comprehensibility"
        )
        k = test_bench.config.k_max
        st = series[f"ST λ={test_bench.config.lambdas[-1]:g}"][k]
        assert st > series[BASELINE][k]

    def test_baseline_diversity_lowest(self, test_bench):
        """Fig 4 shape: fixed 3-hop baseline paths are least diverse."""
        series = figures.metric_series(
            test_bench, Scenario.USER_CENTRIC, "PGPR", "diversity"
        )
        k = test_bench.config.k_max
        assert series[BASELINE][k] <= series["PCST"][k]

    def test_baseline_redundancy_highest(self, test_bench):
        series = figures.metric_series(
            test_bench, Scenario.USER_CENTRIC, "PGPR", "redundancy"
        )
        k = test_bench.config.k_max
        st = series[f"ST λ={test_bench.config.lambdas[0]:g}"][k]
        assert series[BASELINE][k] >= st

    def test_pcst_privacy_highest(self, test_bench):
        series = figures.metric_series(
            test_bench, Scenario.USER_CENTRIC, "PGPR", "privacy"
        )
        k = test_bench.config.k_max
        assert series["PCST"][k] >= series[BASELINE][k]


class TestConsistencySeries:
    def test_values_in_unit_range(self, test_bench):
        series = figures.consistency_series(
            test_bench, Scenario.USER_CENTRIC, "PGPR"
        )
        for points in series.values():
            for value in points.values():
                assert 0.0 <= value <= 1.0

    def test_k_axis_stops_before_kmax(self, test_bench):
        series = figures.consistency_series(
            test_bench, Scenario.USER_CENTRIC, "PGPR"
        )
        for points in series.values():
            assert max(points) <= test_bench.config.k_max - 1


class TestPanelBuilders:
    def test_figure2_panel_coverage(self, test_bench):
        panels = figures.figure2(test_bench)
        assert len(panels) == 8  # 4 scenarios x 2 recommenders

    def test_figure12_uses_plm_baselines(self, test_bench):
        panels = figures.figure12(test_bench)
        assert set(panels) == {
            "user-centric PLM",
            "user-centric PEARLM",
            "user-group PLM",
            "user-group PEARLM",
        }

    def test_figure14_requires_lfm(self, test_bench):
        with pytest.raises(ValueError):
            figures.figure14(test_bench)


class TestPerformanceFigures:
    def test_figure10_times_positive(self, test_bench):
        panels = figures.figure10(
            test_bench, group_sizes=(2, 3)
        )
        for series in panels.values():
            for points in series.values():
                for value in points.values():
                    assert value > 0.0

    def test_figure11_small_scale(self):
        panels = figures.figure11(scale=0.004, k=3, group_size=4)
        assert "user-group time" in panels
        st_points = panels["user-group time"]["ST"]
        assert st_points  # at least one synthetic graph measured


class TestFigure17:
    def test_popularity_buckets_present(self, test_bench):
        panels = figures.figure17(test_bench)
        assert set(panels) <= {"popular", "unpopular"}
        assert panels
