"""Fairness slicing."""

import pytest

from repro.experiments.fairness import (
    FairnessReport,
    item_fairness,
    user_fairness,
)


class TestUserFairness:
    def test_groups_by_gender(self, test_bench):
        report = user_fairness(
            test_bench, "PGPR", "comprehensibility", "PCST", k=3
        )
        assert set(report.groups) <= {"M", "F"}
        assert report.group_means

    def test_gap_non_negative(self, test_bench):
        report = user_fairness(
            test_bench, "PGPR", "privacy", "PCST", k=3
        )
        assert report.max_gap >= 0.0

    def test_baseline_method(self, test_bench):
        report = user_fairness(
            test_bench, "PGPR", "comprehensibility", "baseline", k=3
        )
        assert report.group_means


class TestItemFairness:
    def test_popularity_buckets(self, test_bench):
        report = item_fairness(
            test_bench, "PGPR", "comprehensibility", "baseline", k=3
        )
        assert set(report.groups) <= {"popular", "unpopular"}

    def test_single_group_gap_zero(self):
        report = FairnessReport(
            metric="x", group_means={"only": 1.0}, max_gap=0.0
        )
        assert report.max_gap == 0.0
