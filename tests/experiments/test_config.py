"""Experiment configuration."""

import pytest

from repro.experiments.config import RECENCY_COMBOS, ExperimentConfig


class TestExperimentConfig:
    def test_default_is_ci_scale(self):
        config = ExperimentConfig.ci_scale()
        assert config.scale_label == "ci"
        assert config.k_max == 10

    def test_test_scale_smaller(self):
        test = ExperimentConfig.test_scale()
        ci = ExperimentConfig.ci_scale()
        assert test.dataset_scale < ci.dataset_scale
        assert test.k_max <= ci.k_max

    def test_paper_scale_matches_paper_sampling(self):
        paper = ExperimentConfig.paper_scale()
        assert paper.users_per_gender == 100
        assert paper.items_per_bucket == 50
        assert paper.dataset_scale == 1.0

    def test_overrides(self):
        config = ExperimentConfig.ci_scale(k_max=3)
        assert config.k_max == 3

    def test_k_values_range(self):
        config = ExperimentConfig.ci_scale(k_max=4)
        assert list(config.k_values) == [1, 2, 3, 4]

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(dataset="netflix")

    def test_bad_k_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(k_max=0)

    def test_empty_lambdas_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(lambdas=())

    def test_with_dataset(self):
        config = ExperimentConfig.ci_scale().with_dataset("lfm1m")
        assert config.dataset == "lfm1m"

    def test_with_recency(self):
        config = ExperimentConfig.ci_scale().with_recency(0.5, 0.5)
        assert config.beta_rating == 0.5
        assert config.beta_recency == 0.5

    def test_cache_key_stable_and_distinct(self):
        a = ExperimentConfig.ci_scale()
        b = ExperimentConfig.ci_scale()
        c = ExperimentConfig.ci_scale(seed=1)
        assert a.cache_key() == b.cache_key()
        assert a.cache_key() != c.cache_key()

    def test_recency_combos_cover_extremes(self):
        assert (1.0, 0.0) in RECENCY_COMBOS
        assert (0.0, 1.0) in RECENCY_COMBOS
