"""Simulated user study."""

import pytest

from repro.experiments.user_study import STUDY_METRICS, simulate_user_study


class TestUserStudy:
    @pytest.fixture(scope="class")
    def result(self, test_bench):
        return simulate_user_study(
            test_bench, num_participants=20, num_pairs=3, seed=1
        )

    def test_summaries_preferred(self, result):
        """The paper reports 78.67%; the simulation should land above
        chance when summaries are genuinely smaller. (Test scale uses
        k=5 where the compression margin is thin; the CI-scale bench
        asserts the stronger >60% bound.)"""
        assert result.preference_share > 0.52

    def test_participant_and_pair_counts(self, result):
        assert result.num_participants == 20
        assert result.num_pairs == 3

    def test_all_seven_metrics_rated(self, result):
        assert set(result.metric_ratings) == set(STUDY_METRICS)

    def test_ratings_in_scale(self, result):
        for rating in result.metric_ratings.values():
            assert 1.0 <= rating <= 5.0

    def test_comprehensibility_rated_highly(self, result):
        """Brevity drives the simulated choices, so comprehensibility
        (which tracks brevity exactly) must score near the top."""
        ratings = result.metric_ratings
        assert ratings["comprehensibility"] >= max(
            v
            for name, v in ratings.items()
            if name not in ("comprehensibility",)
        ) - 1.0

    def test_deterministic_for_seed(self, test_bench):
        a = simulate_user_study(test_bench, num_participants=5, seed=9)
        b = simulate_user_study(test_bench, num_participants=5, seed=9)
        assert a.preference_share == b.preference_share
