"""Generic experiment runner (fast experiments only)."""

import pytest

from repro.experiments.runner import (
    available_experiments,
    run_experiment,
    run_experiments,
)


class TestRunner:
    def test_catalog_complete(self):
        experiments = available_experiments()
        assert "table1" in experiments
        for n in range(2, 18):
            assert f"fig{n}" in experiments
        assert "userstudy" in experiments

    def test_table1(self):
        result = run_experiment("table1")
        assert result.experiment_id == "table1"
        assert "13" in result.report
        assert result.data.summary_edges == 6

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_fig2_at_test_scale(self, test_config):
        result = run_experiment("fig2", test_config)
        assert "ST" in result.report
        assert result.data  # panels present

    def test_userstudy_at_test_scale(self, test_config):
        result = run_experiment("userstudy", test_config)
        assert "preference" in result.report

    def test_batch_shares_config(self, test_config):
        results = run_experiments(["table1", "fig2"], test_config)
        assert [r.experiment_id for r in results] == ["table1", "fig2"]
