"""CLI entry point (fast paths only)."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "fig17" in out
        assert "userstudy" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Summary:" in out
        assert "13" in out

    def test_table3_runs(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "G5" in out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_table2_test_scale(self, capsys):
        assert main(["table2", "--scale", "test"]) == 0
        out = capsys.readouterr().out
        assert "average degree" in out

    def test_batch_demo_engine_and_partial_reuse(self, capsys):
        assert (
            main(
                [
                    "batch",
                    "--scale", "test",
                    "--demo", "6",
                    "--method", "ST",
                    "--engine", "csr",
                    "--partial-reuse",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "batch method=ST tasks=6" in out

    def test_batch_demo_pcst_dict_engine(self, capsys):
        assert (
            main(
                [
                    "batch",
                    "--scale", "test",
                    "--demo", "4",
                    "--method", "PCST",
                    "--engine", "dict",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "batch method=PCST tasks=4" in out

    def test_batch_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            main(["batch", "--demo", "2", "--engine", "gpu"])

    def test_batch_rejects_unknown_parallel_backend(self):
        with pytest.raises(SystemExit):
            main(["batch", "--demo", "2", "--parallel", "gpu"])

    def test_batch_no_partial_reuse_escape_hatch(self, capsys):
        """--partial-reuse is the default; --no-partial-reuse opts out
        and is accepted (as a no-op) for non-ST methods too."""
        assert (
            main(
                [
                    "batch", "--demo", "2", "--scale", "test",
                    "--method", "ST", "--no-partial-reuse",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "batch", "--demo", "2", "--scale", "test",
                    "--method", "PCST", "--partial-reuse",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "batch method=PCST tasks=2" in out

    def test_batch_explicit_serial_backend(self, capsys):
        assert (
            main(
                [
                    "batch", "--demo", "2", "--scale", "test",
                    "--method", "ST", "--parallel", "serial",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "parallel=serial" in out
